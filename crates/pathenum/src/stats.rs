//! Instrumentation: per-query counters and phase timers.
//!
//! These counters back the paper's detailed-metric experiments: Figure 6
//! (#edges accessed, #invalid partial results, #results), Figure 7 / 17
//! (phase breakdown), and Table 7 (peak materialized tuples).

use std::time::Duration;

/// Counters collected while evaluating one query.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct Counters {
    /// Edges touched during enumeration (size of every neighbor list the
    /// algorithm looped over). Figure 6's `#Edges`.
    pub edges_accessed: u64,
    /// Partial results that did not extend into any final path.
    /// Figure 6's `#Invalid`.
    pub invalid_partial_results: u64,
    /// Total partial results generated (search-tree nodes).
    pub partial_results: u64,
    /// Results emitted. Figure 6's `#Results`.
    pub results: u64,
    /// Peak number of materialized tuple *vertices* held at once by
    /// join-style algorithms (0 for pure DFS). Table 7's partial-result
    /// memory is `4 bytes x` this.
    pub peak_materialized_vertices: u64,
}

impl Counters {
    /// Merges another counter set into this one (peak takes the max).
    pub fn merge(&mut self, other: &Counters) {
        self.edges_accessed += other.edges_accessed;
        self.invalid_partial_results += other.invalid_partial_results;
        self.partial_results += other.partial_results;
        self.results += other.results;
        self.peak_materialized_vertices = self
            .peak_materialized_vertices
            .max(other.peak_materialized_vertices);
    }

    /// Peak memory attributable to materialized partial results, in bytes.
    pub fn peak_materialized_bytes(&self) -> u64 {
        self.peak_materialized_vertices * std::mem::size_of::<u32>() as u64
    }
}

/// Which enumeration strategy evaluated the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Method {
    /// Depth-first search on the index (Algorithm 4).
    #[default]
    IdxDfs,
    /// Two-sided join on the index (Algorithm 6).
    IdxJoin,
}

impl std::fmt::Display for Method {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Method::IdxDfs => write!(f, "IDX-DFS"),
            Method::IdxJoin => write!(f, "IDX-JOIN"),
        }
    }
}

/// A method name [`Method`]'s `FromStr` impl could not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMethodError(String);

impl std::fmt::Display for ParseMethodError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown method {:?} (expected idx-dfs or idx-join)",
            self.0
        )
    }
}

impl std::error::Error for ParseMethodError {}

impl std::str::FromStr for Method {
    type Err = ParseMethodError;

    /// Parses the paper's method names, case-insensitively and accepting
    /// `_` for `-`: `"IDX-DFS"`/`"dfs"` and `"IDX-JOIN"`/`"join"`. Lets
    /// benchmark and workload CLIs force a method without code changes.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().replace('_', "-").as_str() {
            "idx-dfs" | "idxdfs" | "dfs" => Ok(Method::IdxDfs),
            "idx-join" | "idxjoin" | "join" => Ok(Method::IdxJoin),
            _ => Err(ParseMethodError(s.to_string())),
        }
    }
}

/// Wall-clock breakdown of one PathEnum query (Figures 7, 12, 17).
#[derive(Debug, Default, Clone)]
pub struct PhaseTimings {
    /// Plan-cache lookup time on a warm hit (zero on cold runs and on
    /// engines without a cache). A hit skips BFS, index build, and
    /// estimation entirely, so on the warm path this is the *only*
    /// preprocessing cost — it is deliberately not folded into
    /// `index_build`, which stays zero so phase tables attribute warm
    /// time correctly.
    pub cache_lookup: Duration,
    /// The two boundary BFS traversals (part of index construction).
    pub bfs: Duration,
    /// Full index construction including the BFS time.
    pub index_build: Duration,
    /// Preliminary estimation (Equation 5). Essentially free.
    pub preliminary_estimation: Duration,
    /// Join-order optimization (Algorithm 5), when it ran.
    pub optimization: Duration,
    /// Result enumeration.
    pub enumeration: Duration,
}

impl PhaseTimings {
    /// Total query time.
    pub fn total(&self) -> Duration {
        // index_build already includes bfs.
        self.cache_lookup
            + self.index_build
            + self.preliminary_estimation
            + self.optimization
            + self.enumeration
    }

    /// Preprocessing = everything before enumeration (on a warm cache
    /// hit this is exactly the lookup time).
    pub fn preprocessing(&self) -> Duration {
        self.cache_lookup + self.index_build + self.preliminary_estimation + self.optimization
    }
}

/// Full report of one PathEnum run.
///
/// The `Default` value describes a run that never started (used by the
/// request layer when a pre-flight stopping rule — an expired deadline,
/// a cancelled token, a zero limit — fires before the pipeline runs).
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Strategy the optimizer selected.
    pub method: Method,
    /// Phase timings.
    pub timings: PhaseTimings,
    /// Enumeration counters.
    pub counters: Counters,
    /// Preliminary search-space estimate (Equation 5).
    pub preliminary_estimate: u64,
    /// Full-fledged estimate of `|Q|` (walk count), when computed.
    pub full_estimate: Option<u64>,
    /// Modeled left-deep DFS cost `T_DFS`, when the optimizer ran.
    pub t_dfs: Option<u64>,
    /// Modeled bushy join cost `T_JOIN` at the chosen cut, when the
    /// optimizer ran.
    pub t_join: Option<u64>,
    /// Chosen cut position `i*`, when IDX-JOIN was selected.
    pub cut_position: Option<u32>,
    /// Index footprint in bytes.
    pub index_bytes: usize,
    /// Number of edges stored in the index's forward table.
    pub index_edges: usize,
    /// Whether the plan (and index) came from the engine's
    /// [`PlanCache`](crate::plan::PlanCache).
    pub cache: crate::plan::CacheOutcome,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_and_maxes() {
        let mut a = Counters {
            edges_accessed: 10,
            invalid_partial_results: 1,
            partial_results: 20,
            results: 5,
            peak_materialized_vertices: 100,
        };
        let b = Counters {
            edges_accessed: 5,
            invalid_partial_results: 2,
            partial_results: 7,
            results: 3,
            peak_materialized_vertices: 40,
        };
        a.merge(&b);
        assert_eq!(a.edges_accessed, 15);
        assert_eq!(a.invalid_partial_results, 3);
        assert_eq!(a.results, 8);
        assert_eq!(a.peak_materialized_vertices, 100);
    }

    #[test]
    fn peak_bytes_scales_by_vertex_width() {
        let c = Counters {
            peak_materialized_vertices: 8,
            ..Counters::default()
        };
        assert_eq!(c.peak_materialized_bytes(), 32);
    }

    #[test]
    fn timing_totals_compose() {
        let t = PhaseTimings {
            cache_lookup: Duration::ZERO,
            bfs: Duration::from_millis(1),
            index_build: Duration::from_millis(3),
            preliminary_estimation: Duration::from_millis(1),
            optimization: Duration::from_millis(2),
            enumeration: Duration::from_millis(10),
        };
        assert_eq!(t.preprocessing(), Duration::from_millis(6));
        assert_eq!(t.total(), Duration::from_millis(16));
    }

    #[test]
    fn warm_hit_timings_attribute_lookup_not_build() {
        // The shape every cache-hit path produces: index_build (and every
        // other build phase) zero, the lookup cost in its own field, both
        // totals still accounting for it.
        let t = PhaseTimings {
            cache_lookup: Duration::from_micros(5),
            enumeration: Duration::from_millis(2),
            ..PhaseTimings::default()
        };
        assert_eq!(t.index_build, Duration::ZERO);
        assert_eq!(t.preprocessing(), Duration::from_micros(5));
        assert_eq!(t.total(), Duration::from_micros(2005));
    }

    #[test]
    fn method_display() {
        assert_eq!(Method::IdxDfs.to_string(), "IDX-DFS");
        assert_eq!(Method::IdxJoin.to_string(), "IDX-JOIN");
    }

    #[test]
    fn method_from_str_round_trips_and_accepts_aliases() {
        for method in [Method::IdxDfs, Method::IdxJoin] {
            assert_eq!(method.to_string().parse::<Method>().unwrap(), method);
        }
        assert_eq!("dfs".parse::<Method>().unwrap(), Method::IdxDfs);
        assert_eq!("idx_join".parse::<Method>().unwrap(), Method::IdxJoin);
        assert_eq!("Join".parse::<Method>().unwrap(), Method::IdxJoin);
        let err = "bfs".parse::<Method>().unwrap_err();
        assert!(err.to_string().contains("bfs"));
    }
}

//! Constraint extensions of the HcPE problem (Appendix E).
//!
//! The motivating applications impose extra conditions on results:
//!
//! * [`predicate`] — every edge of a path must satisfy a user predicate
//!   (e-commerce fraud: only monitor particular transaction types);
//! * [`accumulative`] — an associative-commutative accumulation of edge
//!   values must pass a final check (money laundering: total risk above a
//!   threshold), Algorithm 7;
//! * [`automaton`] — the edge-label sequence must be accepted by a finite
//!   automaton (knowledge graphs: action sequences such as
//!   `write -> mention`), Algorithm 8.

pub mod accumulative;
pub mod automaton;
pub mod join_variants;
pub mod predicate;

pub use accumulative::{accumulative_dfs, AccumulativeQuery};
pub use automaton::{automaton_dfs, Automaton, AutomatonError};
pub use join_variants::{accumulative_join, automaton_join, FilterSink};
pub use predicate::{filtered_graph, path_enum_with_predicate};

//! Edge-predicate constraints: paths whose every edge satisfies `f_p`.
//!
//! Per Appendix E, a predicate query is evaluated by conceptually applying
//! the predicate to `G` before enumeration; the surviving subgraph's paths
//! are exactly the constrained results. We materialize the filtered graph
//! (a single `O(|E|)` pass — the same cost as folding the check into the
//! index-building BFS) and then run the regular PathEnum pipeline on it.

use pathenum_graph::{CsrGraph, GraphBuilder, NeighborAccess, VertexId};

use crate::optimizer::{path_enum, PathEnumConfig};
use crate::query::Query;
use crate::request::PathEnumError;
use crate::sink::PathSink;
use crate::stats::RunReport;

/// The subgraph of `graph` keeping exactly the edges where
/// `predicate(from, to)` holds.
///
/// Accepts any [`NeighborAccess`] source (a `CsrGraph` or a dynamic
/// graph's overlay view); the result is always a materialized
/// `CsrGraph`, since predicate evaluation is a one-shot `O(|E|)` pass
/// either way.
pub fn filtered_graph<G, F>(graph: &G, mut predicate: F) -> CsrGraph
where
    G: NeighborAccess,
    F: FnMut(VertexId, VertexId) -> bool,
{
    let mut builder = GraphBuilder::new(graph.num_vertices());
    for from in 0..graph.num_vertices() as VertexId {
        graph.for_each_out(from, |to| {
            if predicate(from, to) {
                builder
                    .add_edge(from, to)
                    .expect("edges of a valid graph stay valid");
            }
        });
    }
    builder.finish()
}

/// Runs PathEnum restricted to edges satisfying `predicate`.
///
/// Prefer [`QueryRequest::predicate`](crate::request::QueryRequest::predicate)
/// for service callers; this free function survives as the migration
/// oracle the request layer is tested against.
pub fn path_enum_with_predicate<F>(
    graph: &CsrGraph,
    query: Query,
    config: PathEnumConfig,
    predicate: F,
    sink: &mut dyn PathSink,
) -> Result<RunReport, PathEnumError>
where
    F: FnMut(VertexId, VertexId) -> bool,
{
    query.validate(graph.num_vertices())?;
    let filtered = filtered_graph(graph, predicate);
    path_enum(&filtered, query, config, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::test_support::*;
    use crate::sink::CollectingSink;

    #[test]
    fn filtering_removes_offending_edges() {
        let g = figure1_graph();
        // Forbid the direct v0 -> t edge.
        let f = filtered_graph(&g, |from, to| !(from == V[0] && to == T));
        assert_eq!(f.num_edges(), g.num_edges() - 1);
        assert!(!f.has_edge(V[0], T));
        assert!(f.has_edge(S, V[0]));
    }

    #[test]
    fn constrained_enumeration_equals_post_filtering() {
        let g = figure1_graph();
        let q = Query::new(S, T, 4).unwrap();
        // Constraint: edges must not touch v2.
        let pred = |from: VertexId, to: VertexId| from != V[2] && to != V[2];

        let mut constrained = CollectingSink::default();
        path_enum_with_predicate(&g, q, PathEnumConfig::default(), pred, &mut constrained).unwrap();

        let mut all = CollectingSink::default();
        crate::reference::brute_force_paths(&g, q, &mut all);
        let mut expected: Vec<Vec<VertexId>> = all
            .paths
            .into_iter()
            .filter(|p| p.windows(2).all(|w| pred(w[0], w[1])))
            .collect();
        expected.sort_unstable();
        assert_eq!(constrained.sorted_paths(), expected);
    }

    #[test]
    fn predicate_true_is_identity() {
        let g = figure1_graph();
        let q = Query::new(S, T, 4).unwrap();
        let mut constrained = CollectingSink::default();
        path_enum_with_predicate(
            &g,
            q,
            PathEnumConfig::default(),
            |_, _| true,
            &mut constrained,
        )
        .unwrap();
        assert_eq!(constrained.paths.len(), 5);
    }
}

//! Constrained evaluation through IDX-JOIN (Appendix E's closing note).
//!
//! The accumulative operator `⊕` is commutative and associative, so its
//! value over a joined path is independent of evaluation order; the
//! automaton check is applied to the complete label sequence once a
//! joined tuple proves to be a valid path. Both are realized as checks
//! at join-emission time — each emitted path is O(k) long, so the check
//! costs the same order as emission itself — in contrast to the DFS
//! variants (Algorithms 7/8), which thread the state through the search
//! and can cut branches early.

use pathenum_graph::VertexId;

use crate::constraints::accumulative::AccumulativeQuery;
use crate::constraints::automaton::{Automaton, LabelId};
use crate::enumerate::idx_join;
use crate::index::Index;
use crate::sink::{PathSink, SearchControl};
use crate::stats::Counters;

/// A sink adapter that forwards only paths passing `predicate`.
pub struct FilterSink<'a, F: FnMut(&[VertexId]) -> bool> {
    predicate: F,
    inner: &'a mut dyn PathSink,
    /// Paths dropped by the predicate.
    pub rejected: u64,
}

impl<'a, F: FnMut(&[VertexId]) -> bool> FilterSink<'a, F> {
    /// Wraps `inner`, forwarding only paths where `predicate` holds.
    pub fn new(predicate: F, inner: &'a mut dyn PathSink) -> Self {
        FilterSink {
            predicate,
            inner,
            rejected: 0,
        }
    }
}

impl<F: FnMut(&[VertexId]) -> bool> PathSink for FilterSink<'_, F> {
    fn emit(&mut self, path: &[VertexId]) -> SearchControl {
        if (self.predicate)(path) {
            self.inner.emit(path)
        } else {
            self.rejected += 1;
            SearchControl::Continue
        }
    }

    fn probe(&mut self) -> SearchControl {
        self.inner.probe()
    }
}

/// IDX-JOIN under an accumulative-value constraint: joined paths are
/// emitted only when the folded edge values pass the query's check.
pub fn accumulative_join<V, W, C>(
    index: &Index,
    cut: u32,
    query: &AccumulativeQuery<V, W, C>,
    sink: &mut dyn PathSink,
    counters: &mut Counters,
) -> SearchControl
where
    V: Copy,
    W: Fn(VertexId, VertexId) -> V,
    C: Fn(&V) -> bool,
{
    let mut filter = FilterSink::new(
        |path: &[VertexId]| {
            let mut acc = query.identity;
            for w in path.windows(2) {
                acc = (query.combine)(acc, (query.weight)(w[0], w[1]));
            }
            (query.check)(&acc)
        },
        sink,
    );
    let control = idx_join(index, cut, &mut filter, counters);
    // Results that failed the constraint are not results of the
    // constrained query.
    counters.results -= filter.rejected;
    control
}

/// IDX-JOIN under an action-sequence constraint: joined paths are
/// emitted only when the automaton accepts their label sequence.
pub fn automaton_join<L>(
    index: &Index,
    cut: u32,
    automaton: &Automaton,
    label_of: L,
    sink: &mut dyn PathSink,
    counters: &mut Counters,
) -> SearchControl
where
    L: Fn(VertexId, VertexId) -> LabelId,
{
    let mut filter = FilterSink::new(
        |path: &[VertexId]| {
            automaton.accepts_sequence(path.windows(2).map(|w| label_of(w[0], w[1])))
        },
        sink,
    );
    let control = idx_join(index, cut, &mut filter, counters);
    counters.results -= filter.rejected;
    control
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::accumulative::accumulative_dfs;
    use crate::constraints::automaton::automaton_dfs;
    use crate::index::test_support::*;
    use crate::query::Query;
    use crate::sink::CollectingSink;

    fn weight(_: VertexId, to: VertexId) -> u64 {
        u64::from(to % 3)
    }

    fn label(from: VertexId, _: VertexId) -> LabelId {
        from % 2
    }

    #[test]
    fn accumulative_join_matches_accumulative_dfs() {
        let g = figure1_graph();
        let q = Query::new(S, T, 4).unwrap();
        let index = Index::build(&g, q);
        let acc = AccumulativeQuery {
            identity: 0u64,
            combine: |a, b| a + b,
            weight,
            check: |&v: &u64| v >= 3,
            prune: None,
        };
        let mut dfs_sink = CollectingSink::default();
        let mut counters = Counters::default();
        accumulative_dfs(&index, &acc, &mut dfs_sink, &mut counters);
        for cut in 1..4u32 {
            let mut join_sink = CollectingSink::default();
            let mut join_counters = Counters::default();
            accumulative_join(&index, cut, &acc, &mut join_sink, &mut join_counters);
            assert_eq!(
                join_sink.sorted_paths(),
                dfs_sink.clone().sorted_paths(),
                "cut {cut}"
            );
            assert_eq!(join_counters.results, counters.results);
        }
    }

    #[test]
    fn automaton_join_matches_automaton_dfs() {
        let g = figure1_graph();
        let q = Query::new(S, T, 4).unwrap();
        let index = Index::build(&g, q);
        // Accept sequences with an even number of 1-labels.
        let mut a = Automaton::new(2, 2, 0).unwrap();
        a.add_transition(0, 0, 0).unwrap();
        a.add_transition(0, 1, 1).unwrap();
        a.add_transition(1, 0, 1).unwrap();
        a.add_transition(1, 1, 0).unwrap();
        a.set_accepting(0).unwrap();

        let mut dfs_sink = CollectingSink::default();
        let mut counters = Counters::default();
        automaton_dfs(&index, &a, label, &mut dfs_sink, &mut counters);
        for cut in 1..4u32 {
            let mut join_sink = CollectingSink::default();
            let mut join_counters = Counters::default();
            automaton_join(&index, cut, &a, label, &mut join_sink, &mut join_counters);
            assert_eq!(
                join_sink.sorted_paths(),
                dfs_sink.clone().sorted_paths(),
                "cut {cut}"
            );
        }
    }

    #[test]
    fn filter_sink_counts_rejections() {
        let mut inner = CollectingSink::default();
        let mut filter = FilterSink::new(|p: &[VertexId]| p.len() > 2, &mut inner);
        filter.emit(&[0, 1]);
        filter.emit(&[0, 1, 2]);
        assert_eq!(filter.rejected, 1);
        assert_eq!(inner.paths.len(), 1);
    }
}

//! Accumulative-value constraints (Algorithm 7).
//!
//! Each edge carries a value; a commutative-associative operator `⊕`
//! folds the values along a path, and a result is emitted only when the
//! accumulated value passes a user check (e.g. "total transaction risk at
//! least θ"). The DFS carries the running accumulation; when the operator
//! admits a monotone bound (non-negative weights under `+`), an optional
//! upper-bound prune cuts branches early, exactly as discussed in
//! Appendix E.

use pathenum_graph::VertexId;

use crate::index::{Index, LocalId};
use crate::sink::{PathSink, SearchControl};
use crate::stats::Counters;

/// An accumulative-value HcPE query.
pub struct AccumulativeQuery<V, W, C> {
    /// Identity of the `⊕` operator (0 for `+`, 1 for `*`, ...).
    pub identity: V,
    /// The operator `⊕` — must be commutative and associative.
    pub combine: fn(V, V) -> V,
    /// Edge-value lookup on *global* vertex ids.
    pub weight: W,
    /// Final acceptance check `f_a(beta)`.
    pub check: C,
    /// Optional monotone prune: called with the running accumulation; a
    /// `false` return abandons the branch. Only sound when the check can
    /// never succeed for any extension (e.g. "sum of non-negative weights
    /// <= threshold" once exceeded). `None` disables pruning — required
    /// when values may decrease (negative weights, Appendix E's caveat).
    pub prune: Option<fn(&V) -> bool>,
}

/// Algorithm 7: IDX-DFS carrying an accumulated edge value, emitting only
/// paths whose accumulation passes `check`.
pub fn accumulative_dfs<V, W, C>(
    index: &Index,
    query: &AccumulativeQuery<V, W, C>,
    sink: &mut dyn PathSink,
    counters: &mut Counters,
) -> SearchControl
where
    V: Copy,
    W: Fn(VertexId, VertexId) -> V,
    C: Fn(&V) -> bool,
{
    let (Some(s_local), Some(t_local)) = (index.s_local(), index.t_local()) else {
        return SearchControl::Continue;
    };
    let mut partial: Vec<LocalId> = Vec::with_capacity(index.k() as usize + 1);
    let mut scratch: Vec<VertexId> = Vec::new();
    partial.push(s_local);
    let mut probe_tick = 0u32;
    search(
        index,
        query,
        t_local,
        &mut partial,
        query.identity,
        &mut scratch,
        sink,
        &mut probe_tick,
        counters,
    )
}

#[allow(clippy::too_many_arguments)]
fn search<V, W, C>(
    index: &Index,
    query: &AccumulativeQuery<V, W, C>,
    t_local: LocalId,
    partial: &mut Vec<LocalId>,
    acc: V,
    scratch: &mut Vec<VertexId>,
    sink: &mut dyn PathSink,
    probe_tick: &mut u32,
    counters: &mut Counters,
) -> SearchControl
where
    V: Copy,
    W: Fn(VertexId, VertexId) -> V,
    C: Fn(&V) -> bool,
{
    if *probe_tick & (crate::enumerate::PROBE_STRIDE - 1) == 0
        && sink.probe() == SearchControl::Stop
    {
        return SearchControl::Stop;
    }
    *probe_tick = probe_tick.wrapping_add(1);
    let v = *partial.last().expect("partial contains s");
    if v == t_local {
        if (query.check)(&acc) {
            counters.results += 1;
            scratch.clear();
            scratch.extend(partial.iter().map(|&l| index.global(l)));
            return sink.emit(scratch);
        }
        return SearchControl::Continue;
    }
    let budget = index.k() - (partial.len() as u32 - 1) - 1;
    let neighbors = index.i_t(v, budget);
    counters.edges_accessed += neighbors.len() as u64;
    for &next in neighbors {
        if partial.contains(&next) {
            continue;
        }
        let edge_value = (query.weight)(index.global(v), index.global(next));
        let new_acc = (query.combine)(acc, edge_value);
        if let Some(prune) = query.prune {
            if !prune(&new_acc) {
                continue;
            }
        }
        partial.push(next);
        counters.partial_results += 1;
        let control = search(
            index, query, t_local, partial, new_acc, scratch, sink, probe_tick, counters,
        );
        partial.pop();
        if control == SearchControl::Stop {
            return SearchControl::Stop;
        }
    }
    SearchControl::Continue
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::test_support::*;
    use crate::query::Query;
    use crate::sink::CollectingSink;

    /// Edge weight = 1 per hop, so the accumulation is the path length.
    fn hop_weight(_: VertexId, _: VertexId) -> u64 {
        1
    }

    fn run<C: Fn(&u64) -> bool>(
        k: u32,
        check: C,
        prune: Option<fn(&u64) -> bool>,
    ) -> Vec<Vec<VertexId>> {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(S, T, k).unwrap());
        let q = AccumulativeQuery {
            identity: 0u64,
            combine: |a, b| a + b,
            weight: hop_weight,
            check,
            prune,
        };
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        accumulative_dfs(&idx, &q, &mut sink, &mut counters);
        sink.sorted_paths()
    }

    #[test]
    fn threshold_above_selects_long_paths() {
        // Sum of unit weights >= 4 keeps only the three 4-edge paths.
        let paths = run(4, |&beta| beta >= 4, None);
        assert_eq!(paths.len(), 3);
        for p in &paths {
            assert_eq!(p.len(), 5);
        }
    }

    #[test]
    fn threshold_below_with_prune_matches_without() {
        // Sum <= 3 with monotone pruning must equal the unpruned run.
        let with_prune = run(4, |&beta| beta <= 3, Some(|&beta| beta <= 3));
        let without = run(4, |&beta| beta <= 3, None);
        assert_eq!(with_prune, without);
        assert_eq!(with_prune.len(), 2); // (s,v0,t) and (s,v1,v2,t)
    }

    #[test]
    fn trivial_check_recovers_all_paths() {
        assert_eq!(run(4, |_| true, None).len(), 5);
    }

    #[test]
    fn multiplicative_operator_works() {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(S, T, 4).unwrap());
        // Product of per-edge factor 2 == 2^length; require exactly 2^2.
        let q = AccumulativeQuery {
            identity: 1u64,
            combine: |a, b| a * b,
            weight: |_, _| 2u64,
            check: |&beta: &u64| beta == 4,
            prune: None,
        };
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        accumulative_dfs(&idx, &q, &mut sink, &mut counters);
        assert_eq!(sink.paths, vec![vec![S, V[0], T]]);
    }
}

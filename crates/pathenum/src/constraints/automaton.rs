//! Action-sequence constraints via a finite automaton (Algorithm 8).
//!
//! Edge labels model actions; a path qualifies only if the sequence of
//! labels along it drives a deterministic finite automaton from its start
//! state into an accepting state. The DFS threads the automaton state and
//! abandons a branch the moment a transition is undefined — terminating
//! invalid searches earlier than post-filtering, as Appendix E notes.

use pathenum_graph::VertexId;

use crate::index::{Index, LocalId};
use crate::sink::{PathSink, SearchControl};
use crate::stats::Counters;

/// Automaton state id.
pub type StateId = u32;

/// Edge label (action) id.
pub type LabelId = u32;

/// Errors constructing an [`Automaton`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AutomatonError {
    /// A transition references a state `>= num_states`.
    StateOutOfRange(StateId),
    /// A transition references a label `>= num_labels`.
    LabelOutOfRange(LabelId),
}

impl std::fmt::Display for AutomatonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AutomatonError::StateOutOfRange(s) => write!(f, "state {s} out of range"),
            AutomatonError::LabelOutOfRange(l) => write!(f, "label {l} out of range"),
        }
    }
}

impl std::error::Error for AutomatonError {}

/// A deterministic finite automaton over edge labels, stored as the dense
/// transition matrix `A[state][label] -> Option<state>` of the paper.
#[derive(Debug, Clone)]
pub struct Automaton {
    num_states: usize,
    num_labels: usize,
    start: StateId,
    accepting: Vec<bool>,
    /// `transitions[state * num_labels + label]`; `u32::MAX` = undefined.
    transitions: Vec<StateId>,
}

const NO_TRANSITION: StateId = StateId::MAX;

impl Automaton {
    /// Creates an automaton with `num_states` states (start state included)
    /// and `num_labels` labels, with every transition undefined.
    pub fn new(
        num_states: usize,
        num_labels: usize,
        start: StateId,
    ) -> Result<Self, AutomatonError> {
        if start as usize >= num_states {
            return Err(AutomatonError::StateOutOfRange(start));
        }
        Ok(Automaton {
            num_states,
            num_labels,
            start,
            accepting: vec![false; num_states],
            transitions: vec![NO_TRANSITION; num_states * num_labels],
        })
    }

    /// Defines `from --label--> to`.
    pub fn add_transition(
        &mut self,
        from: StateId,
        label: LabelId,
        to: StateId,
    ) -> Result<(), AutomatonError> {
        for state in [from, to] {
            if state as usize >= self.num_states {
                return Err(AutomatonError::StateOutOfRange(state));
            }
        }
        if label as usize >= self.num_labels {
            return Err(AutomatonError::LabelOutOfRange(label));
        }
        self.transitions[from as usize * self.num_labels + label as usize] = to;
        Ok(())
    }

    /// Marks `state` accepting.
    pub fn set_accepting(&mut self, state: StateId) -> Result<(), AutomatonError> {
        if state as usize >= self.num_states {
            return Err(AutomatonError::StateOutOfRange(state));
        }
        self.accepting[state as usize] = true;
        Ok(())
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// `A[state][label]`.
    #[inline]
    pub fn step(&self, state: StateId, label: LabelId) -> Option<StateId> {
        if label as usize >= self.num_labels {
            return None;
        }
        let next = self.transitions[state as usize * self.num_labels + label as usize];
        (next != NO_TRANSITION).then_some(next)
    }

    /// Whether `state` accepts.
    #[inline]
    pub fn accepts(&self, state: StateId) -> bool {
        self.accepting[state as usize]
    }

    /// Runs the automaton over a label sequence from the start state.
    pub fn run(&self, labels: impl IntoIterator<Item = LabelId>) -> Option<StateId> {
        let mut state = self.start;
        for label in labels {
            state = self.step(state, label)?;
        }
        Some(state)
    }

    /// Whether the automaton accepts a full label sequence.
    pub fn accepts_sequence(&self, labels: impl IntoIterator<Item = LabelId>) -> bool {
        self.run(labels).is_some_and(|s| self.accepts(s))
    }
}

/// Algorithm 8: IDX-DFS threading an automaton state; paths are emitted
/// only when the walk's label sequence ends in an accepting state.
/// `label_of` maps a *global* edge to its action label.
pub fn automaton_dfs<L>(
    index: &Index,
    automaton: &Automaton,
    label_of: L,
    sink: &mut dyn PathSink,
    counters: &mut Counters,
) -> SearchControl
where
    L: Fn(VertexId, VertexId) -> LabelId,
{
    let (Some(s_local), Some(t_local)) = (index.s_local(), index.t_local()) else {
        return SearchControl::Continue;
    };
    let mut partial: Vec<LocalId> = Vec::with_capacity(index.k() as usize + 1);
    let mut scratch: Vec<VertexId> = Vec::new();
    partial.push(s_local);
    let mut probe_tick = 0u32;
    search(
        index,
        automaton,
        &label_of,
        t_local,
        &mut partial,
        automaton.start(),
        &mut scratch,
        sink,
        &mut probe_tick,
        counters,
    )
}

#[allow(clippy::too_many_arguments)]
fn search<L>(
    index: &Index,
    automaton: &Automaton,
    label_of: &L,
    t_local: LocalId,
    partial: &mut Vec<LocalId>,
    state: StateId,
    scratch: &mut Vec<VertexId>,
    sink: &mut dyn PathSink,
    probe_tick: &mut u32,
    counters: &mut Counters,
) -> SearchControl
where
    L: Fn(VertexId, VertexId) -> LabelId,
{
    if *probe_tick & (crate::enumerate::PROBE_STRIDE - 1) == 0
        && sink.probe() == SearchControl::Stop
    {
        return SearchControl::Stop;
    }
    *probe_tick = probe_tick.wrapping_add(1);
    let v = *partial.last().expect("partial contains s");
    if v == t_local {
        if automaton.accepts(state) {
            counters.results += 1;
            scratch.clear();
            scratch.extend(partial.iter().map(|&l| index.global(l)));
            return sink.emit(scratch);
        }
        return SearchControl::Continue;
    }
    let budget = index.k() - (partial.len() as u32 - 1) - 1;
    let neighbors = index.i_t(v, budget);
    counters.edges_accessed += neighbors.len() as u64;
    for &next in neighbors {
        if partial.contains(&next) {
            continue;
        }
        let label = label_of(index.global(v), index.global(next));
        let Some(next_state) = automaton.step(state, label) else {
            continue; // invalid action for the current state: prune
        };
        partial.push(next);
        counters.partial_results += 1;
        let control = search(
            index, automaton, label_of, t_local, partial, next_state, scratch, sink, probe_tick,
            counters,
        );
        partial.pop();
        if control == SearchControl::Stop {
            return SearchControl::Stop;
        }
    }
    SearchControl::Continue
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::test_support::*;
    use crate::query::Query;
    use crate::sink::CollectingSink;

    /// Two labels: 0 = "low", 1 = "high". Edges whose target id is even
    /// are "high".
    fn label(_: VertexId, to: VertexId) -> LabelId {
        LabelId::from(to.is_multiple_of(2))
    }

    /// Accepts any sequence (one state, both labels loop, accepting).
    fn universal() -> Automaton {
        let mut a = Automaton::new(1, 2, 0).unwrap();
        a.add_transition(0, 0, 0).unwrap();
        a.add_transition(0, 1, 0).unwrap();
        a.set_accepting(0).unwrap();
        a
    }

    #[test]
    fn universal_automaton_recovers_all_paths() {
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(S, T, 4).unwrap());
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        automaton_dfs(&idx, &universal(), label, &mut sink, &mut counters);
        assert_eq!(sink.paths.len(), 5);
    }

    #[test]
    fn constrained_run_matches_post_filtering() {
        // Accepts sequences matching "alternating starting with high":
        // state 0 expects high (label 1), state 1 expects low (label 0).
        let mut a = Automaton::new(2, 2, 0).unwrap();
        a.add_transition(0, 1, 1).unwrap();
        a.add_transition(1, 0, 0).unwrap();
        a.set_accepting(0).unwrap();
        a.set_accepting(1).unwrap();

        let g = figure1_graph();
        let q = Query::new(S, T, 4).unwrap();
        let idx = Index::build(&g, q);
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        automaton_dfs(&idx, &a, label, &mut sink, &mut counters);

        let mut all = CollectingSink::default();
        crate::reference::brute_force_paths(&g, q, &mut all);
        let mut expected: Vec<Vec<VertexId>> = all
            .paths
            .into_iter()
            .filter(|p| a.accepts_sequence(p.windows(2).map(|w| label(w[0], w[1]))))
            .collect();
        expected.sort_unstable();
        assert_eq!(sink.sorted_paths(), expected);
    }

    #[test]
    fn rejecting_automaton_yields_nothing() {
        let mut a = Automaton::new(1, 2, 0).unwrap();
        a.add_transition(0, 0, 0).unwrap();
        a.add_transition(0, 1, 0).unwrap();
        // No accepting state.
        let g = figure1_graph();
        let idx = Index::build(&g, Query::new(S, T, 4).unwrap());
        let mut sink = CollectingSink::default();
        let mut counters = Counters::default();
        automaton_dfs(&idx, &a, label, &mut sink, &mut counters);
        assert!(sink.paths.is_empty());
    }

    #[test]
    fn construction_validates_ranges() {
        assert_eq!(
            Automaton::new(2, 2, 5).unwrap_err(),
            AutomatonError::StateOutOfRange(5)
        );
        let mut a = Automaton::new(2, 2, 0).unwrap();
        assert_eq!(
            a.add_transition(0, 7, 1),
            Err(AutomatonError::LabelOutOfRange(7))
        );
        assert_eq!(
            a.add_transition(0, 1, 9),
            Err(AutomatonError::StateOutOfRange(9))
        );
        assert_eq!(a.set_accepting(4), Err(AutomatonError::StateOutOfRange(4)));
    }

    #[test]
    fn run_and_accepts_sequence() {
        let mut a = Automaton::new(2, 1, 0).unwrap();
        a.add_transition(0, 0, 1).unwrap();
        a.set_accepting(1).unwrap();
        assert_eq!(a.run([0]), Some(1));
        assert!(a.accepts_sequence([0]));
        assert!(!a.accepts_sequence([] as [LabelId; 0]));
        assert!(!a.accepts_sequence([0, 0])); // no transition from state 1
    }
}

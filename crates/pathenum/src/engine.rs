//! A reusable query engine for back-to-back HcPE queries.
//!
//! The paper's motivating workloads (streaming fraud detection, online
//! risk scoring) issue many queries against the same graph. Each
//! [`crate::optimizer::path_enum`] call allocates three `O(|V|)` buffers
//! for the boundary BFS and the id mapping; [`QueryEngine`] hoists those
//! into persistent scratch so the steady-state per-query cost is the BFS
//! traversal itself plus the (small) index allocation.

use pathenum_graph::CsrGraph;

use crate::index::{BuildScratch, Index};
use crate::optimizer::{path_enum_on_index_with_build, PathEnumConfig};
use crate::query::Query;
use crate::sink::PathSink;
use crate::stats::RunReport;

/// A PathEnum engine bound to one graph, reusing construction buffers
/// across queries.
///
/// ```
/// use pathenum::{PathEnumConfig, Query, QueryEngine};
/// use pathenum::sink::CountingSink;
/// use pathenum_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edges([(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
/// let graph = b.finish();
///
/// let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
/// for t in [3u32, 2, 1] {
///     let mut sink = CountingSink::default();
///     engine.run(Query::new(0, t, 3).unwrap(), &mut sink);
/// }
/// assert_eq!(engine.queries_served(), 3);
/// ```
#[derive(Debug)]
pub struct QueryEngine<'g> {
    graph: &'g CsrGraph,
    config: PathEnumConfig,
    scratch: BuildScratch,
    queries_served: u64,
}

impl<'g> QueryEngine<'g> {
    /// Creates an engine over `graph` with the given orchestrator
    /// configuration.
    pub fn new(graph: &'g CsrGraph, config: PathEnumConfig) -> Self {
        QueryEngine { graph, config, scratch: BuildScratch::default(), queries_served: 0 }
    }

    /// The graph this engine serves.
    pub fn graph(&self) -> &CsrGraph {
        self.graph
    }

    /// Number of queries evaluated so far.
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// Builds the light-weight index for `query`, reusing scratch.
    pub fn build_index(&mut self, query: Query) -> Index {
        Index::build_reusing(self.graph, query, &mut self.scratch).0
    }

    /// Evaluates one query end-to-end (Figure 2 pipeline), streaming
    /// results into `sink`.
    pub fn run(&mut self, query: Query, sink: &mut dyn PathSink) -> RunReport {
        self.queries_served += 1;
        let build_start = std::time::Instant::now();
        let (index, bfs_time) = Index::build_reusing(self.graph, query, &mut self.scratch);
        let build_time = build_start.elapsed();
        path_enum_on_index_with_build(&index, self.config, sink, build_time, bfs_time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::test_support::*;
    use crate::optimizer::path_enum;
    use crate::sink::CollectingSink;
    use pathenum_graph::generators::erdos_renyi;

    #[test]
    fn engine_matches_one_shot_api_across_many_queries() {
        let g = erdos_renyi(60, 350, 12);
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        for t in 1..30u32 {
            let q = Query::new(0, t, 4).unwrap();
            let mut from_engine = CollectingSink::default();
            let engine_report = engine.run(q, &mut from_engine);
            let mut one_shot = CollectingSink::default();
            let direct_report = path_enum(&g, q, PathEnumConfig::default(), &mut one_shot);
            assert_eq!(from_engine.sorted_paths(), one_shot.sorted_paths(), "t={t}");
            assert_eq!(engine_report.counters.results, direct_report.counters.results);
            assert_eq!(engine_report.index_edges, direct_report.index_edges);
        }
        assert_eq!(engine.queries_served(), 29);
    }

    #[test]
    fn scratch_reuse_survives_empty_queries() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        // Empty (reverse) query, then a real one: stale scratch must not
        // leak between them.
        let mut sink = CollectingSink::default();
        engine.run(Query::new(T, S, 4).unwrap(), &mut sink);
        assert!(sink.paths.is_empty());
        let mut sink = CollectingSink::default();
        engine.run(Query::new(S, T, 4).unwrap(), &mut sink);
        assert_eq!(sink.paths.len(), 5);
    }

    #[test]
    fn build_index_is_equivalent_to_standalone_build() {
        let g = figure1_graph();
        let q = Query::new(S, T, 4).unwrap();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let from_engine = engine.build_index(q);
        let standalone = Index::build(&g, q);
        assert_eq!(from_engine.num_vertices(), standalone.num_vertices());
        assert_eq!(from_engine.num_edges(), standalone.num_edges());
    }
}

//! A reusable query engine for back-to-back HcPE queries — the
//! service front end of the reproduction.
//!
//! The paper's motivating workloads (streaming fraud detection, online
//! risk scoring) issue many queries against the same graph under latency
//! budgets. [`QueryEngine`] serves them three ways:
//!
//! * [`execute`](QueryEngine::execute) — evaluate a
//!   [`QueryRequest`] end-to-end, returning a
//!   [`QueryResponse`] with counts, phase timings, and an explicit
//!   [`Termination`] reason;
//! * [`execute_into`](QueryEngine::execute_into) — the same, streaming
//!   paths into a caller-supplied [`PathSink`];
//! * [`stream`](QueryEngine::stream) — a pull-based
//!   [`PathStream`] iterator for lazy
//!   consumption.
//!
//! Every entry point is a thin driver over the planner/executor split of
//! [`crate::plan`]: acquire a [`PhysicalPlan`] (from the engine's
//! version-aware [`PlanCache`], or by planning from scratch), then let
//! the [`Executor`] interpret it against the
//! sink. [`explain`](QueryEngine::explain) stops after the first half —
//! the plan with its modeled costs, without enumerating.
//!
//! Two levels of reuse keep steady-state per-query cost down:
//! persistent build scratch (the three `O(|V|)` BFS/id-mapping buffers
//! are hoisted out of every build), and the plan cache (a repeated
//! `(s, t, k)` request skips the boundary BFS and index build entirely —
//! the dominant per-query cost the paper measures). The cache is
//! invalidated by the serving graph's
//! [`GraphVersion`](pathenum_graph::GraphVersion) epoch and can be moved
//! across engines over successive
//! [`DynamicGraph`](pathenum_graph::DynamicGraph) snapshots.

use std::time::{Duration, Instant};

use pathenum_graph::{CsrGraph, GraphSnapshot};

use crate::index::{BuildScratch, Index};
use crate::optimizer::{path_enum_on_index_with_build, PathEnumConfig};
use crate::plan::{
    CacheOutcome, Executor, PhysicalPlan, PlanCache, PlanKey, Planner, StoppingRules,
};
use crate::query::Query;
use crate::request::{
    ConstraintSpec, PathEnumError, PathStream, QueryRequest, QueryResponse, Termination,
};
use crate::results::{CachedResult, ResultCache, ResultCacheStats, ResultKey, TeeSink};
use crate::sink::{FnSink, PathSink, SearchControl};
use crate::stats::{Counters, PhaseTimings, RunReport};

/// A PathEnum engine bound to one graph, reusing construction buffers
/// and cached plans across queries.
///
/// The engine is generic over any [`GraphSnapshot`] — a heap
/// [`CsrGraph`] (the default), a zero-copy
/// [`FrozenGraph`](pathenum_graph::FrozenGraph) served from a `PEG2`
/// image, or a [`GraphHandle`](pathenum_graph::GraphHandle) of either —
/// and produces byte-identical results across representations (the
/// strictly-ascending adjacency contract pins emission order).
///
/// ```
/// use pathenum::{PathEnumConfig, QueryEngine, QueryRequest};
/// use pathenum_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edges([(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
/// let graph = b.finish();
///
/// let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
/// for t in [3u32, 2, 1] {
///     let response = engine.execute(&QueryRequest::paths(0, t).max_hops(3)).unwrap();
///     assert!(!response.termination.is_early());
/// }
/// assert_eq!(engine.queries_served(), 3);
/// ```
#[derive(Debug)]
pub struct QueryEngine<'g, G: GraphSnapshot = CsrGraph> {
    graph: &'g G,
    config: PathEnumConfig,
    scratch: BuildScratch,
    cache: PlanCache,
    /// The result layer ([`ResultCache`]) — `None` (the default) keeps
    /// the layer off entirely; attach one with
    /// [`with_result_cache`](Self::with_result_cache).
    results: Option<ResultCache>,
    queries_served: u64,
    queries_rejected: u64,
}

impl<'g, G: GraphSnapshot> QueryEngine<'g, G> {
    /// Creates an engine over `graph` with the given orchestrator
    /// configuration and a default-capacity [`PlanCache`].
    pub fn new(graph: &'g G, config: PathEnumConfig) -> Self {
        QueryEngine::with_cache(graph, config, PlanCache::default())
    }

    /// Creates an engine with an explicit plan cache — pass a
    /// `PlanCache::new(0)` to disable caching, or a cache carried over
    /// from an engine that served an earlier snapshot of the same
    /// [`DynamicGraph`](pathenum_graph::DynamicGraph) (entries survive
    /// exactly when no mutation happened in between).
    pub fn with_cache(graph: &'g G, config: PathEnumConfig, cache: PlanCache) -> Self {
        QueryEngine {
            graph,
            config,
            scratch: BuildScratch::default(),
            cache,
            results: None,
            queries_served: 0,
            queries_rejected: 0,
        }
    }

    /// Attaches a [`ResultCache`] — the fourth caching layer, serving
    /// repeated requests from stored paths without planning *or*
    /// enumerating (see [`crate::results`]). Off unless attached. Pass a
    /// cache carried over from an engine that served an earlier snapshot
    /// of the same graph to keep its answers warm across snapshots
    /// (entries survive exactly when the version did not move).
    pub fn with_result_cache(mut self, results: ResultCache) -> Self {
        self.results = Some(results);
        self
    }

    /// The graph this engine serves.
    pub fn graph(&self) -> &'g G {
        self.graph
    }

    /// Number of queries evaluated so far. Requests stopped by a
    /// pre-flight rule before any evaluation (see
    /// [`queries_rejected`](Self::queries_rejected)) are not counted.
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// Number of requests a pre-flight stopping rule (pre-cancelled
    /// token, zero time budget, zero result limit) short-circuited
    /// before planning. These produce a response (with
    /// [`CacheOutcome::Skipped`]) but never touch the graph or the cache.
    pub fn queries_rejected(&self) -> u64 {
        self.queries_rejected
    }

    /// The engine's plan cache (entry count, statistics).
    pub fn plan_cache(&self) -> &PlanCache {
        &self.cache
    }

    /// Convenience for `plan_cache().stats()`.
    pub fn cache_stats(&self) -> crate::plan::PlanCacheStats {
        self.cache.stats()
    }

    /// Drops every cached plan (statistics are kept).
    pub fn clear_plan_cache(&mut self) {
        self.cache.clear();
    }

    /// Consumes the engine, handing the plan cache to its successor
    /// (typically an engine over the next
    /// [`DynamicGraph::snapshot`](pathenum_graph::DynamicGraph::snapshot)).
    pub fn into_cache(self) -> PlanCache {
        self.cache
    }

    /// The engine's result cache, if one is attached.
    pub fn result_cache(&self) -> Option<&ResultCache> {
        self.results.as_ref()
    }

    /// Result-layer statistics (all-zero when no cache is attached).
    pub fn result_cache_stats(&self) -> ResultCacheStats {
        self.results
            .as_ref()
            .map(ResultCache::stats)
            .unwrap_or_default()
    }

    /// Consumes the engine, handing back the attached result cache (if
    /// any) so a successor engine over the same graph can keep serving
    /// its stored answers.
    pub fn into_result_cache(self) -> Option<ResultCache> {
        self.results
    }

    /// Builds the light-weight index for `query`, reusing scratch.
    pub fn build_index(&mut self, query: Query) -> Index {
        Index::build_reusing(self.graph, query, &mut self.scratch).0
    }

    /// Evaluates one query end-to-end (Figure 2 pipeline), streaming
    /// results into `sink`.
    ///
    /// The query is validated against the serving graph; an out-of-range
    /// endpoint returns [`PathEnumError::VertexOutOfRange`] instead of
    /// panicking inside the index build. This legacy entry point never
    /// consults the plan cache; prefer [`execute`](Self::execute).
    pub fn run(
        &mut self,
        query: Query,
        sink: &mut dyn PathSink,
    ) -> Result<RunReport, PathEnumError> {
        query.validate(self.graph.num_vertices())?;
        self.queries_served += 1;
        let build_start = Instant::now();
        let (index, bfs_time) = Index::build_reusing(self.graph, query, &mut self.scratch);
        let build_time = build_start.elapsed();
        Ok(path_enum_on_index_with_build(
            &index,
            self.config,
            sink,
            build_time,
            bfs_time,
        ))
    }

    /// Evaluates a [`QueryRequest`], collecting result paths into the
    /// response when the request asked for
    /// [`collect_paths`](QueryRequest::collect_paths).
    pub fn execute(&mut self, request: &QueryRequest<'_>) -> Result<QueryResponse, PathEnumError> {
        execute_collecting(request.collect, |sink| self.execute_into(request, sink))
    }

    /// Plans a request without executing it — the `EXPLAIN` of this
    /// engine. Returns the [`PhysicalPlan`] the next
    /// [`execute`](Self::execute) of the same request will interpret:
    /// same method, same join cut, plus the modeled costs
    /// (`t_dfs`/`t_join`), estimates, and index footprint.
    ///
    /// Planning goes through the cache, and a cold plan is stored — so
    /// `explain` both reports on and *warms* the cache (the index built
    /// for the explanation is the one a later execution reuses).
    pub fn explain(&mut self, request: &QueryRequest<'_>) -> Result<PhysicalPlan, PathEnumError> {
        let query = request.validate(self.graph.num_vertices())?;
        let key = self.plan_key(request);
        let version = self.graph.version();
        if let Some(key) = key {
            if let Some((plan, _)) = self.cache.lookup(&key, version) {
                let mut plan = *plan;
                plan.constraint = request.constraint.kind();
                plan.threads = request.effective_threads();
                return Ok(plan);
            }
        }
        let planner = Planner::new(self.graph, self.config);
        let (planned, _) = planner.plan_query(query, request, &mut self.scratch);
        let plan = planned.plan;
        if let Some(key) = key {
            self.cache.insert(key, version, planned.plan, planned.index);
        }
        Ok(plan)
    }

    /// Evaluates a [`QueryRequest`], streaming result paths into `sink`.
    ///
    /// The request's `limit` / `time_budget` / `CancelToken` wrap `sink`
    /// (via [`crate::request::ControlledSink`]), so the inner sink only
    /// sees results the stopping rules admit;
    /// [`QueryResponse::termination`] reports which rule, if any, cut the
    /// run short.
    ///
    /// Termination reflects *request-level* rules only: a `sink` that
    /// itself returns [`SearchControl::Stop`] ends the run, but the
    /// response still reads [`Termination::Completed`] — the caller
    /// issued that stop and already knows the result set is truncated.
    /// Prefer [`QueryRequest::limit`] when the cut-off should be
    /// reported.
    pub fn execute_into(
        &mut self,
        request: &QueryRequest<'_>,
        sink: &mut dyn PathSink,
    ) -> Result<QueryResponse, PathEnumError> {
        let query = request.validate(self.graph.num_vertices())?;

        let deadline = request.time_budget.map(|b| Instant::now() + b);
        if let Some(stopped) = preflight_stop(request, deadline) {
            self.queries_rejected += 1;
            return Ok(stopped);
        }
        self.queries_served += 1;

        let version = self.graph.version();

        // Result layer (off unless a cache is attached): a stored answer
        // skips planning *and* enumeration — the paths are replayed
        // straight into `sink`. On a miss the run is recorded through a
        // [`TeeSink`] and admitted for next time.
        if self.results.is_some() {
            match result_key(self.config, request) {
                Some(rkey) => {
                    let lookup_start = Instant::now();
                    let cached = self.results.as_mut().expect("checked above").lookup(
                        &rkey,
                        request.limit,
                        request.time_budget,
                        version,
                    );
                    if let Some(cached) = cached {
                        return Ok(replay_result_hit(
                            &cached,
                            request,
                            sink,
                            lookup_start.elapsed(),
                            request.effective_threads(),
                        ));
                    }
                    let mut tee = TeeSink::new(sink);
                    let response = self.execute_planned(query, request, deadline, &mut tee);
                    if let Some(paths) = tee.finish() {
                        if response.termination != Termination::Cancelled {
                            let plan = response.plan.expect("executed responses carry the plan");
                            self.results.as_mut().expect("checked above").insert(
                                rkey,
                                version,
                                plan,
                                paths,
                                response.termination,
                                request.limit,
                                request.time_budget,
                                None,
                            );
                        }
                    }
                    return Ok(response);
                }
                None => self.results.as_mut().expect("checked above").note_bypass(),
            }
        }

        Ok(self.execute_planned(query, request, deadline, sink))
    }

    /// The plan-acquisition + execution core of
    /// [`execute_into`](Self::execute_into): plan-cache lookup or cold
    /// planning, then [`Executor`] dispatch. Factored out so the result
    /// layer can wrap the sink around it.
    fn execute_planned(
        &mut self,
        query: Query,
        request: &QueryRequest<'_>,
        deadline: Option<Instant>,
        sink: &mut dyn PathSink,
    ) -> QueryResponse {
        let key = self.plan_key(request);
        let version = self.graph.version();

        // Warm path: a fresh cached entry skips BFS, index build, and
        // estimation; the (tiny) lookup cost is reported as
        // `cache_lookup`, leaving `index_build` zero — no build ran.
        let lookup_start = Instant::now();
        if let Some(key) = key {
            if let Some((plan, index)) = self.cache.lookup(&key, version) {
                let mut plan = *plan;
                plan.constraint = request.constraint.kind();
                plan.threads = request.effective_threads();
                let timings = PhaseTimings {
                    cache_lookup: lookup_start.elapsed(),
                    ..PhaseTimings::default()
                };
                return execute_on_plan(
                    index,
                    plan,
                    request,
                    deadline,
                    sink,
                    timings,
                    CacheOutcome::Hit,
                );
            }
        }

        // Cold path: plan from scratch, execute, then store (the index
        // moves into the cache after the borrow for execution ends).
        let planner = Planner::new(self.graph, self.config);
        let (planned, timings) = planner.plan_query(query, request, &mut self.scratch);
        let outcome = if key.is_some() {
            CacheOutcome::Miss
        } else {
            CacheOutcome::Bypass
        };
        let response = execute_on_plan(
            &planned.index,
            planned.plan,
            request,
            deadline,
            sink,
            timings,
            outcome,
        );
        if let Some(key) = key {
            self.cache.insert(key, version, planned.plan, planned.index);
        }
        response
    }

    /// Builds (or fetches from the plan cache) the index for a
    /// [`QueryRequest`] and returns a pull-based [`PathStream`] over its
    /// results.
    ///
    /// The DFS advances only while the caller pulls; dropping the stream
    /// abandons the remaining search at zero cost. Constraint requests
    /// yield exactly the constrained path set (predicates restrict the
    /// enumerated subgraph; accumulative/automaton checks filter
    /// complete paths). Streams *read* the cache (a warm index is
    /// cloned) but do not populate it — a stream never runs the
    /// estimators, so it has no plan to store.
    pub fn stream<'q>(
        &mut self,
        request: &'q QueryRequest<'q>,
    ) -> Result<PathStream<'q>, PathEnumError> {
        let query = request.validate(self.graph.num_vertices())?;
        // Pre-stopped requests count as *rejected* — the same rules as
        // `execute`'s pre-flight — and never touch the graph or the
        // cache; the returned stream yields nothing and reports the
        // termination on the first pull.
        let deadline = request.time_budget.map(|b| Instant::now() + b);
        if preflight_termination(request, deadline).is_some() {
            self.queries_rejected += 1;
            return Ok(PathStream::new(Index::empty(query), request));
        }
        self.queries_served += 1;
        if let Some(key) = self.plan_key(request) {
            if let Some((_, index)) = self.cache.lookup(&key, self.graph.version()) {
                return Ok(PathStream::new(Index::clone(index), request));
            }
        }
        let index = match &request.constraint {
            ConstraintSpec::Predicate(predicate) => {
                let filtered = crate::constraints::filtered_graph(self.graph, predicate);
                Index::build_reusing(&filtered, query, &mut self.scratch).0
            }
            _ => Index::build_reusing(self.graph, query, &mut self.scratch).0,
        };
        Ok(PathStream::new(index, request))
    }

    /// The cache key for a request, or `None` when the request is not
    /// cacheable (bypass flag, zero-capacity cache, or an unfingerprinted
    /// predicate).
    fn plan_key(&self, request: &QueryRequest<'_>) -> Option<PlanKey> {
        if request.bypass_cache || self.cache.capacity() == 0 {
            return None;
        }
        let config = crate::plan::effective_config(self.config, request);
        PlanKey::for_request(request, config)
    }
}

impl<'g> QueryEngine<'g> {
    /// An engine serving a [`DynamicGraph`](pathenum_graph::DynamicGraph)
    /// *in place* — queries run on the borrowed overlay view with zero
    /// materialization. Convenience constructor for
    /// [`DynamicEngine`](crate::DynamicEngine).
    pub fn on_dynamic(
        graph: &pathenum_graph::DynamicGraph,
        config: PathEnumConfig,
    ) -> crate::dynamic::DynamicEngine<'_> {
        crate::dynamic::DynamicEngine::new(graph, config)
    }
}

/// The shared `execute()` wiring of both engines: evaluate through a
/// path-collecting sink and attach the collected paths to the response
/// when the request asked for them.
pub(crate) fn execute_collecting<F>(
    collect: bool,
    evaluate: F,
) -> Result<QueryResponse, PathEnumError>
where
    F: FnOnce(&mut dyn PathSink) -> Result<QueryResponse, PathEnumError>,
{
    let mut collected: Vec<Vec<u32>> = Vec::new();
    let mut sink = FnSink(|path: &[u32]| {
        if collect {
            collected.push(path.to_vec());
        }
        SearchControl::Continue
    });
    let mut response = evaluate(&mut sink)?;
    response.paths = collected;
    Ok(response)
}

/// The pre-flight stopping rules shared by every evaluator (both
/// engines and the [`service`](crate::service) layer): a request that
/// is already cancelled, already past its deadline, or limited to zero
/// results never starts. Explain requests always plan — they never
/// enumerate anyway. Returns the short-circuit response when a rule
/// fires; such requests count as *rejected* (not served), perform no
/// cache lookup, and their response reads
/// [`CacheOutcome::Skipped`](crate::plan::CacheOutcome::Skipped).
pub(crate) fn preflight_stop(
    request: &QueryRequest<'_>,
    deadline: Option<Instant>,
) -> Option<QueryResponse> {
    preflight_termination(request, deadline).map(QueryResponse::empty)
}

/// The rule set behind [`preflight_stop`], shared verbatim with
/// [`QueryEngine::stream`] (which has no response to build — a rejected
/// stream reports its termination on the first pull instead).
pub(crate) fn preflight_termination(
    request: &QueryRequest<'_>,
    deadline: Option<Instant>,
) -> Option<Termination> {
    if request.explain {
        return None;
    }
    if request.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
        return Some(Termination::Cancelled);
    }
    if deadline.is_some_and(|d| Instant::now() >= d) {
        return Some(Termination::DeadlineExceeded);
    }
    if request.limit == Some(0) {
        return Some(Termination::LimitReached);
    }
    None
}

/// The result-cache key for a request, or `None` when its *results* are
/// not cacheable: bypass flags (either layer's), explain requests (they
/// never enumerate), accumulative/automaton constraints, and
/// unfingerprinted predicates. Shared by both engines and the service
/// workers.
pub(crate) fn result_key(config: PathEnumConfig, request: &QueryRequest<'_>) -> Option<ResultKey> {
    if request.bypass_cache || request.bypass_result_cache || request.explain {
        return None;
    }
    let effective = crate::plan::effective_config(config, request);
    ResultKey::for_request(request, effective)
}

/// Builds the response of a result-cache hit: the stored prefix is
/// replayed into the caller's sink — no BFS, no index build, no search.
/// Mirrors fresh-execution semantics exactly: a caller-sink stop ends
/// the replay with that path counted as delivered and the response
/// reading [`Termination::Completed`] (the stored termination applies
/// only when the full prefix went out).
pub(crate) fn replay_result_hit(
    cached: &CachedResult,
    request: &QueryRequest<'_>,
    sink: &mut dyn PathSink,
    lookup: Duration,
    threads: usize,
) -> QueryResponse {
    let replay_start = Instant::now();
    let mut delivered = 0usize;
    let mut stopped_early = false;
    while delivered < cached.served {
        let control = sink.emit(cached.paths.get(delivered));
        delivered += 1;
        if control == SearchControl::Stop {
            stopped_early = delivered < cached.served;
            break;
        }
    }
    let termination = if stopped_early {
        Termination::Completed
    } else {
        cached.termination
    };
    let mut plan = cached.plan;
    plan.constraint = request.constraint.kind();
    plan.threads = threads;
    let timings = PhaseTimings {
        cache_lookup: lookup,
        enumeration: replay_start.elapsed(),
        ..PhaseTimings::default()
    };
    let counters = Counters {
        results: delivered as u64,
        ..Counters::default()
    };
    QueryResponse {
        report: plan.report(timings, counters, CacheOutcome::ResultHit),
        termination,
        paths: Vec::new(),
        plan: Some(plan),
    }
}

/// The shared execution core of every evaluator —
/// [`QueryEngine::execute_into`],
/// [`DynamicEngine::execute_into`](crate::DynamicEngine::execute_into),
/// and the concurrent [`service`](crate::service) workers: interpret a
/// plan against a borrowed index (or stop before enumeration for an
/// explain request) and assemble the response. It borrows everything it
/// touches — `&Index`, the request, the sink — and owns no engine
/// state, which is what lets many threads drive it over one shared
/// graph and one shared cache.
pub(crate) fn execute_on_plan(
    index: &Index,
    plan: PhysicalPlan,
    request: &QueryRequest<'_>,
    deadline: Option<Instant>,
    sink: &mut dyn PathSink,
    mut timings: PhaseTimings,
    cache: CacheOutcome,
) -> QueryResponse {
    if request.explain {
        return QueryResponse {
            report: plan.report(timings, Default::default(), cache),
            termination: Termination::Completed,
            paths: Vec::new(),
            plan: Some(plan),
        };
    }
    let rules = StoppingRules {
        limit: request.limit,
        deadline,
        cancel: request.cancel.clone(),
    };
    let execution = Executor::run(index, &plan, &request.constraint, rules, sink);
    timings.enumeration = execution.enumeration;
    QueryResponse {
        report: plan.report(timings, execution.counters, cache),
        termination: execution.termination,
        paths: Vec::new(),
        plan: Some(plan),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::test_support::*;
    use crate::optimizer::path_enum;
    use crate::sink::CollectingSink;
    use crate::stats::Method;
    use pathenum_graph::generators::erdos_renyi;

    #[test]
    fn engine_matches_one_shot_api_across_many_queries() {
        let g = erdos_renyi(60, 350, 12);
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        for t in 1..30u32 {
            let q = Query::new(0, t, 4).unwrap();
            let mut from_engine = CollectingSink::default();
            let engine_report = engine.run(q, &mut from_engine).unwrap();
            let mut one_shot = CollectingSink::default();
            let direct_report = path_enum(&g, q, PathEnumConfig::default(), &mut one_shot).unwrap();
            assert_eq!(from_engine.sorted_paths(), one_shot.sorted_paths(), "t={t}");
            assert_eq!(
                engine_report.counters.results,
                direct_report.counters.results
            );
            assert_eq!(engine_report.index_edges, direct_report.index_edges);
        }
        assert_eq!(engine.queries_served(), 29);
    }

    #[test]
    fn scratch_reuse_survives_empty_queries() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        // Empty (reverse) query, then a real one: stale scratch must not
        // leak between them.
        let mut sink = CollectingSink::default();
        engine.run(Query::new(T, S, 4).unwrap(), &mut sink).unwrap();
        assert!(sink.paths.is_empty());
        let mut sink = CollectingSink::default();
        engine.run(Query::new(S, T, 4).unwrap(), &mut sink).unwrap();
        assert_eq!(sink.paths.len(), 5);
    }

    #[test]
    fn build_index_is_equivalent_to_standalone_build() {
        let g = figure1_graph();
        let q = Query::new(S, T, 4).unwrap();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let from_engine = engine.build_index(q);
        let standalone = Index::build(&g, q);
        assert_eq!(from_engine.num_vertices(), standalone.num_vertices());
        assert_eq!(from_engine.num_edges(), standalone.num_edges());
    }

    #[test]
    fn run_rejects_out_of_range_endpoints_instead_of_panicking() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let mut sink = CollectingSink::default();
        let err = engine
            .run(Query::new(0, 999, 4).unwrap(), &mut sink)
            .unwrap_err();
        assert_eq!(err, PathEnumError::VertexOutOfRange(999));
        assert_eq!(
            engine.queries_served(),
            0,
            "rejected queries are not served"
        );
    }

    #[test]
    fn execute_matches_run_on_figure1() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let request = QueryRequest::paths(S, T).max_hops(4).collect_paths(true);
        let response = engine.execute(&request).unwrap();
        assert_eq!(response.termination, Termination::Completed);
        assert_eq!(response.num_results(), 5);
        assert_eq!(response.paths.len(), 5);

        let mut sink = CollectingSink::default();
        engine.run(Query::new(S, T, 4).unwrap(), &mut sink).unwrap();
        let mut from_execute = response.paths;
        from_execute.sort_unstable();
        assert_eq!(from_execute, sink.sorted_paths());
    }

    #[test]
    fn execute_reports_limit() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let request = QueryRequest::paths(S, T)
            .max_hops(4)
            .limit(2)
            .collect_paths(true);
        let response = engine.execute(&request).unwrap();
        assert_eq!(response.termination, Termination::LimitReached);
        assert_eq!(response.paths.len(), 2);
        // A limit of zero never starts the search.
        let response = engine
            .execute(&QueryRequest::paths(S, T).max_hops(4).limit(0))
            .unwrap();
        assert_eq!(response.termination, Termination::LimitReached);
        assert_eq!(response.num_results(), 0);
    }

    #[test]
    fn execute_reports_zero_deadline_without_panicking() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let request = QueryRequest::paths(S, T)
            .max_hops(4)
            .time_budget(std::time::Duration::ZERO);
        let response = engine.execute(&request).unwrap();
        assert_eq!(response.termination, Termination::DeadlineExceeded);
        assert_eq!(response.num_results(), 0);
    }

    #[test]
    fn execute_reports_pre_cancelled_token() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let token = crate::request::CancelToken::new();
        token.cancel();
        let request = QueryRequest::paths(S, T).max_hops(4).cancel_token(token);
        let response = engine.execute(&request).unwrap();
        assert_eq!(response.termination, Termination::Cancelled);
        assert_eq!(response.num_results(), 0);
    }

    #[test]
    fn early_termination_reports_delivered_count() {
        // num_results must equal the paths actually delivered, even
        // though enumerators count a result before offering it to the
        // sink (the refused emission must not be counted).
        let g = pathenum_graph::generators::complete_digraph(8);
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        for limit in [1u64, 3, 7] {
            let request = QueryRequest::paths(0, 7)
                .max_hops(4)
                .limit(limit)
                .collect_paths(true);
            let response = engine.execute(&request).unwrap();
            assert_eq!(response.termination, Termination::LimitReached);
            assert_eq!(response.num_results(), limit);
            assert_eq!(response.paths.len() as u64, limit);
        }
    }

    #[test]
    fn stream_agrees_with_execute() {
        let g = erdos_renyi(40, 220, 3);
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        for t in 1..10u32 {
            let request = QueryRequest::paths(0, t).max_hops(4).collect_paths(true);
            let mut from_execute = engine.execute(&request).unwrap().paths;
            from_execute.sort_unstable();
            let mut from_stream: Vec<Vec<u32>> = engine.stream(&request).unwrap().collect();
            from_stream.sort_unstable();
            assert_eq!(from_execute, from_stream, "t={t}");
        }
    }

    #[test]
    fn threaded_execute_matches_sequential_set_and_order() {
        let g = erdos_renyi(50, 320, 11);
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        for t in 1..8u32 {
            let sequential = engine
                .execute(&QueryRequest::paths(0, t).max_hops(5).collect_paths(true))
                .unwrap();
            let mut orders: Vec<Vec<Vec<u32>>> = Vec::new();
            for threads in [2usize, 4, 8] {
                let parallel = engine
                    .execute(
                        &QueryRequest::paths(0, t)
                            .max_hops(5)
                            .threads(threads)
                            .collect_paths(true),
                    )
                    .unwrap();
                assert_eq!(parallel.termination, Termination::Completed);
                assert_eq!(parallel.num_results(), sequential.num_results(), "t={t}");
                let mut sorted = parallel.paths.clone();
                sorted.sort_unstable();
                let mut expected = sequential.paths.clone();
                expected.sort_unstable();
                assert_eq!(sorted, expected, "t={t} threads={threads}");
                orders.push(parallel.paths);
            }
            for pair in orders.windows(2) {
                assert_eq!(pair[0], pair[1], "merge order varies with thread count");
            }
        }
    }

    #[test]
    fn threaded_execute_reports_exact_limit() {
        let g = pathenum_graph::generators::complete_digraph(9);
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        for limit in [1u64, 5, 40] {
            let response = engine
                .execute(
                    &QueryRequest::paths(0, 8)
                        .max_hops(4)
                        .threads(4)
                        .limit(limit)
                        .collect_paths(true),
                )
                .unwrap();
            assert_eq!(response.termination, Termination::LimitReached);
            assert_eq!(response.num_results(), limit);
            assert_eq!(response.paths.len() as u64, limit);
        }
    }

    #[test]
    fn threaded_execute_honors_forced_methods() {
        let g = erdos_renyi(40, 260, 5);
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        for method in [Method::IdxDfs, Method::IdxJoin] {
            let sequential = engine
                .execute(
                    &QueryRequest::paths(0, 1)
                        .max_hops(4)
                        .method(method)
                        .collect_paths(true),
                )
                .unwrap();
            let parallel = engine
                .execute(
                    &QueryRequest::paths(0, 1)
                        .max_hops(4)
                        .method(method)
                        .threads(4)
                        .collect_paths(true),
                )
                .unwrap();
            assert_eq!(parallel.report.method, method);
            let mut a = sequential.paths;
            let mut b = parallel.paths;
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{method}");
        }
    }

    #[test]
    fn threaded_execute_with_auto_thread_count_works() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let response = engine
            .execute(
                &QueryRequest::paths(S, T)
                    .max_hops(4)
                    .threads(0)
                    .collect_paths(true),
            )
            .unwrap();
        assert_eq!(response.num_results(), 5);
    }

    #[test]
    fn forced_method_override_is_respected() {
        let g = erdos_renyi(40, 260, 5);
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let dfs = engine
            .execute(&QueryRequest::paths(0, 1).max_hops(4).method(Method::IdxDfs))
            .unwrap();
        let join = engine
            .execute(
                &QueryRequest::paths(0, 1)
                    .max_hops(4)
                    .method(Method::IdxJoin),
            )
            .unwrap();
        assert_eq!(dfs.report.method, Method::IdxDfs);
        assert_eq!(join.report.method, Method::IdxJoin);
        assert_eq!(dfs.num_results(), join.num_results());
    }

    #[test]
    fn repeated_requests_hit_the_cache_with_identical_output() {
        let g = erdos_renyi(60, 380, 21);
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let request = QueryRequest::paths(0, 1).max_hops(4).collect_paths(true);
        let cold = engine.execute(&request).unwrap();
        assert_eq!(cold.report.cache, CacheOutcome::Miss);
        let warm = engine.execute(&request).unwrap();
        assert_eq!(warm.report.cache, CacheOutcome::Hit);
        assert_eq!(warm.paths, cold.paths);
        assert_eq!(warm.report.method, cold.report.method);
        assert_eq!(warm.report.cut_position, cold.report.cut_position);
        assert_eq!(engine.cache_stats().hits, 1);
        assert_eq!(engine.plan_cache().len(), 1);
    }

    #[test]
    fn bypass_cache_requests_never_store_or_hit() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let request = QueryRequest::paths(S, T).max_hops(4).bypass_cache();
        for _ in 0..3 {
            let response = engine.execute(&request).unwrap();
            assert_eq!(response.report.cache, CacheOutcome::Bypass);
        }
        assert!(engine.plan_cache().is_empty());
        assert_eq!(engine.cache_stats().hits, 0);
    }

    #[test]
    fn zero_capacity_cache_disables_caching() {
        let g = figure1_graph();
        let mut engine = QueryEngine::with_cache(&g, PathEnumConfig::default(), PlanCache::new(0));
        let request = QueryRequest::paths(S, T).max_hops(4);
        for _ in 0..2 {
            let response = engine.execute(&request).unwrap();
            assert_eq!(response.report.cache, CacheOutcome::Bypass);
        }
        assert!(engine.plan_cache().is_empty());
    }

    #[test]
    fn explain_plans_without_enumerating_and_warms_the_cache() {
        let g = erdos_renyi(60, 380, 9);
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let request = QueryRequest::paths(0, 1).max_hops(4).collect_paths(true);
        let plan = engine.explain(&request).unwrap();
        assert_eq!(plan.query, Query::new(0, 1, 4).unwrap());
        assert_eq!(engine.plan_cache().len(), 1);

        let response = engine.execute(&request).unwrap();
        assert_eq!(
            response.report.cache,
            CacheOutcome::Hit,
            "explain warmed it"
        );
        assert_eq!(response.report.method, plan.method);
        assert_eq!(response.report.cut_position, plan.cut);
        assert_eq!(response.plan, Some(plan));
    }

    #[test]
    fn explain_flagged_requests_return_the_plan_with_zero_results() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let response = engine
            .execute(&QueryRequest::paths(S, T).max_hops(4).explain())
            .unwrap();
        assert_eq!(response.termination, Termination::Completed);
        assert_eq!(response.num_results(), 0);
        assert!(response.paths.is_empty());
        let plan = response.plan.expect("explain responses carry the plan");
        assert_eq!(plan.method, Method::IdxDfs);
        assert!(plan.index_edges > 0);

        // The real run agrees with the explanation.
        let executed = engine
            .execute(&QueryRequest::paths(S, T).max_hops(4))
            .unwrap();
        assert_eq!(executed.report.method, plan.method);
        assert_eq!(executed.num_results(), 5);
    }

    #[test]
    fn constrained_requests_share_the_unconstrained_plan_entry() {
        // Accumulative/automaton constraints plan on the same index, so
        // an unconstrained warm-up serves them too.
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        engine
            .execute(&QueryRequest::paths(S, T).max_hops(4))
            .unwrap();
        let constrained = QueryRequest::paths(S, T)
            .max_hops(4)
            .collect_paths(true)
            .accumulative(crate::constraints::AccumulativeQuery {
                identity: 0u32,
                combine: |a: u32, b: u32| a + b,
                weight: |_, _| 1u32,
                check: |&len: &u32| len <= 3,
                prune: None,
            });
        let response = engine.execute(&constrained).unwrap();
        assert_eq!(response.report.cache, CacheOutcome::Hit);
        assert!(response.paths.iter().all(|p| p.len() <= 4));
        assert!(response.num_results() > 0);
    }

    #[test]
    fn predicate_requests_cache_only_with_a_fingerprint() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let unfingerprinted = QueryRequest::paths(S, T)
            .max_hops(4)
            .predicate(|_, to| to != V[0]);
        let response = engine.execute(&unfingerprinted).unwrap();
        assert_eq!(response.report.cache, CacheOutcome::Bypass);
        assert!(engine.plan_cache().is_empty());

        let make = || {
            QueryRequest::paths(S, T)
                .max_hops(4)
                .collect_paths(true)
                .predicate(|_, to| to != V[0])
                .constraint_fingerprint(7)
        };
        let cold = engine.execute(&make()).unwrap();
        assert_eq!(cold.report.cache, CacheOutcome::Miss);
        let warm = engine.execute(&make()).unwrap();
        assert_eq!(warm.report.cache, CacheOutcome::Hit);
        assert_eq!(warm.paths, cold.paths);
        assert!(warm.paths.iter().all(|p| !p.contains(&V[0])));
    }

    #[test]
    fn stream_reuses_a_warm_index() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let request = QueryRequest::paths(S, T).max_hops(4);
        engine.execute(&request).unwrap();
        let hits_before = engine.cache_stats().hits;
        let paths: Vec<Vec<u32>> = engine.stream(&request).unwrap().collect();
        assert_eq!(paths.len(), 5);
        assert_eq!(engine.cache_stats().hits, hits_before + 1);
    }

    #[test]
    fn result_cache_hits_skip_planning_and_enumeration() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default())
            .with_result_cache(ResultCache::default());
        let request = QueryRequest::paths(S, T).max_hops(4).collect_paths(true);
        let cold = engine.execute(&request).unwrap();
        assert_eq!(cold.report.cache, CacheOutcome::Miss);
        let warm = engine.execute(&request).unwrap();
        assert_eq!(warm.report.cache, CacheOutcome::ResultHit);
        assert_eq!(warm.paths, cold.paths, "replay is byte-identical");
        assert_eq!(warm.termination, Termination::Completed);
        assert_eq!(warm.num_results(), cold.num_results());
        assert_eq!(
            warm.report.timings.index_build,
            std::time::Duration::ZERO,
            "no build ran"
        );
        let stats = engine.result_cache_stats();
        assert_eq!(stats.lookups, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits + stats.misses + stats.bypasses, stats.lookups);
    }

    #[test]
    fn result_hits_serve_tighter_limits_as_exact_prefixes() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default())
            .with_result_cache(ResultCache::default());
        let full = engine
            .execute(&QueryRequest::paths(S, T).max_hops(4).collect_paths(true))
            .unwrap();
        assert_eq!(full.num_results(), 5);
        for limit in [1u64, 2, 4] {
            let limited = engine
                .execute(
                    &QueryRequest::paths(S, T)
                        .max_hops(4)
                        .limit(limit)
                        .collect_paths(true),
                )
                .unwrap();
            assert_eq!(limited.report.cache, CacheOutcome::ResultHit);
            assert_eq!(limited.termination, Termination::LimitReached);
            assert_eq!(limited.paths, full.paths[..limit as usize], "limit={limit}");
            assert_eq!(limited.num_results(), limit);
        }
    }

    #[test]
    fn truncated_entries_reuse_only_tighter_limits_and_upgrade_on_rerun() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default())
            .with_result_cache(ResultCache::default());
        let narrow = QueryRequest::paths(S, T).max_hops(4).limit(2);
        engine.execute(&narrow).unwrap();
        // A looser limit cannot be served from the truncated entry.
        let wider = engine
            .execute(&QueryRequest::paths(S, T).max_hops(4).limit(4))
            .unwrap();
        assert_ne!(wider.report.cache, CacheOutcome::ResultHit);
        // ... but the re-run recorded more paths, upgrading the entry:
        // the original narrow request now replays from it.
        let replayed = engine.execute(&narrow).unwrap();
        assert_eq!(replayed.report.cache, CacheOutcome::ResultHit);
        assert_eq!(replayed.termination, Termination::LimitReached);
        assert_eq!(replayed.num_results(), 2);
    }

    #[test]
    fn bypass_result_cache_skips_only_the_result_layer() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default())
            .with_result_cache(ResultCache::default());
        let request = QueryRequest::paths(S, T).max_hops(4).bypass_result_cache();
        engine.execute(&request).unwrap();
        let warm = engine.execute(&request).unwrap();
        assert_eq!(
            warm.report.cache,
            CacheOutcome::Hit,
            "plan layer still serves"
        );
        let stats = engine.result_cache_stats();
        assert_eq!(stats.bypasses, 2);
        assert_eq!(stats.hits, 0);
        assert!(engine.result_cache().unwrap().is_empty());
    }

    #[test]
    fn without_an_attached_result_cache_nothing_changes() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let request = QueryRequest::paths(S, T).max_hops(4);
        engine.execute(&request).unwrap();
        let warm = engine.execute(&request).unwrap();
        assert_eq!(warm.report.cache, CacheOutcome::Hit);
        assert!(engine.result_cache().is_none());
        assert_eq!(engine.result_cache_stats(), ResultCacheStats::default());
    }

    #[test]
    fn result_hit_equals_cold_execution_across_methods() {
        let g = erdos_renyi(60, 380, 21);
        for method in [None, Some(Method::IdxDfs), Some(Method::IdxJoin)] {
            let mut engine = QueryEngine::new(&g, PathEnumConfig::default())
                .with_result_cache(ResultCache::default());
            let make = || {
                let r = QueryRequest::paths(0, 1).max_hops(4).collect_paths(true);
                match method {
                    Some(m) => r.method(m),
                    None => r,
                }
            };
            let cold = engine.execute(&make()).unwrap();
            let warm = engine.execute(&make()).unwrap();
            assert_eq!(warm.report.cache, CacheOutcome::ResultHit, "{method:?}");
            assert_eq!(warm.paths, cold.paths, "{method:?}");
            assert_eq!(warm.termination, cold.termination, "{method:?}");
        }
    }

    #[test]
    fn cache_moves_between_engines_over_the_same_graph() {
        let g = figure1_graph();
        let request = QueryRequest::paths(S, T).max_hops(4);
        let mut first = QueryEngine::new(&g, PathEnumConfig::default());
        first.execute(&request).unwrap();
        let cache = first.into_cache();

        let mut second = QueryEngine::with_cache(&g, PathEnumConfig::default(), cache);
        let response = second.execute(&request).unwrap();
        assert_eq!(response.report.cache, CacheOutcome::Hit);
    }
}

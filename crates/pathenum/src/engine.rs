//! A reusable query engine for back-to-back HcPE queries — the
//! service front end of the reproduction.
//!
//! The paper's motivating workloads (streaming fraud detection, online
//! risk scoring) issue many queries against the same graph under latency
//! budgets. [`QueryEngine`] serves them three ways:
//!
//! * [`execute`](QueryEngine::execute) — evaluate a
//!   [`QueryRequest`] end-to-end, returning a
//!   [`QueryResponse`] with counts, phase timings, and an explicit
//!   [`Termination`](crate::request::Termination) reason;
//! * [`execute_into`](QueryEngine::execute_into) — the same, streaming
//!   paths into a caller-supplied [`PathSink`];
//! * [`stream`](QueryEngine::stream) — a pull-based
//!   [`PathStream`](crate::request::PathStream) iterator for lazy
//!   consumption.
//!
//! Every [`crate::optimizer::path_enum`] call allocates three `O(|V|)`
//! buffers for the boundary BFS and the id mapping; the engine hoists
//! those into persistent scratch so the steady-state per-query cost is
//! the BFS traversal itself plus the (small) index allocation. The
//! Appendix E constraints attached to a request run through the same
//! scratch-reusing index build.

use std::time::Instant;

use pathenum_graph::CsrGraph;

use crate::constraints::automaton_join;
use crate::constraints::filtered_graph;
use crate::index::{BuildScratch, Index};
use crate::optimizer::{choose_method, path_enum_on_index_with_build, PathEnumConfig};
use crate::query::Query;
use crate::request::{
    ConstraintSpec, ControlledSink, PathEnumError, PathStream, QueryRequest, QueryResponse,
    Termination,
};
use crate::sink::{FnSink, PathSink, SearchControl};
use crate::stats::{Counters, Method, PhaseTimings, RunReport};

/// A PathEnum engine bound to one graph, reusing construction buffers
/// across queries.
///
/// ```
/// use pathenum::{PathEnumConfig, QueryEngine, QueryRequest};
/// use pathenum_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edges([(0, 1), (1, 3), (0, 2), (2, 3)]).unwrap();
/// let graph = b.finish();
///
/// let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
/// for t in [3u32, 2, 1] {
///     let response = engine.execute(&QueryRequest::paths(0, t).max_hops(3)).unwrap();
///     assert!(!response.termination.is_early());
/// }
/// assert_eq!(engine.queries_served(), 3);
/// ```
#[derive(Debug)]
pub struct QueryEngine<'g> {
    graph: &'g CsrGraph,
    config: PathEnumConfig,
    scratch: BuildScratch,
    queries_served: u64,
}

impl<'g> QueryEngine<'g> {
    /// Creates an engine over `graph` with the given orchestrator
    /// configuration.
    pub fn new(graph: &'g CsrGraph, config: PathEnumConfig) -> Self {
        QueryEngine {
            graph,
            config,
            scratch: BuildScratch::default(),
            queries_served: 0,
        }
    }

    /// The graph this engine serves.
    pub fn graph(&self) -> &CsrGraph {
        self.graph
    }

    /// Number of queries evaluated so far.
    pub fn queries_served(&self) -> u64 {
        self.queries_served
    }

    /// Builds the light-weight index for `query`, reusing scratch.
    pub fn build_index(&mut self, query: Query) -> Index {
        Index::build_reusing(self.graph, query, &mut self.scratch).0
    }

    /// Evaluates one query end-to-end (Figure 2 pipeline), streaming
    /// results into `sink`.
    ///
    /// The query is validated against the serving graph; an out-of-range
    /// endpoint returns [`PathEnumError::VertexOutOfRange`] instead of
    /// panicking inside the index build.
    pub fn run(
        &mut self,
        query: Query,
        sink: &mut dyn PathSink,
    ) -> Result<RunReport, PathEnumError> {
        query.validate(self.graph.num_vertices())?;
        self.queries_served += 1;
        let build_start = Instant::now();
        let (index, bfs_time) = Index::build_reusing(self.graph, query, &mut self.scratch);
        let build_time = build_start.elapsed();
        Ok(path_enum_on_index_with_build(
            &index,
            self.config,
            sink,
            build_time,
            bfs_time,
        ))
    }

    /// Evaluates a [`QueryRequest`], collecting result paths into the
    /// response when the request asked for
    /// [`collect_paths`](QueryRequest::collect_paths).
    pub fn execute(&mut self, request: &QueryRequest<'_>) -> Result<QueryResponse, PathEnumError> {
        let mut collected: Vec<Vec<u32>> = Vec::new();
        let collect = request.collect;
        let mut sink = FnSink(|path: &[u32]| {
            if collect {
                collected.push(path.to_vec());
            }
            SearchControl::Continue
        });
        let mut response = self.execute_into(request, &mut sink)?;
        response.paths = collected;
        Ok(response)
    }

    /// Evaluates a [`QueryRequest`], streaming result paths into `sink`.
    ///
    /// The request's `limit` / `time_budget` / `CancelToken` wrap `sink`
    /// (via [`ControlledSink`]), so the inner sink only sees results the
    /// stopping rules admit; [`QueryResponse::termination`] reports
    /// which rule, if any, cut the run short.
    ///
    /// Termination reflects *request-level* rules only: a `sink` that
    /// itself returns [`SearchControl::Stop`] ends the run, but the
    /// response still reads [`Termination::Completed`] — the caller
    /// issued that stop and already knows the result set is truncated.
    /// Prefer [`QueryRequest::limit`] when the cut-off should be
    /// reported.
    pub fn execute_into(
        &mut self,
        request: &QueryRequest<'_>,
        sink: &mut dyn PathSink,
    ) -> Result<QueryResponse, PathEnumError> {
        let query = request.validate(self.graph.num_vertices())?;
        self.queries_served += 1;

        // Pre-flight: a request that is already cancelled, already past
        // its deadline, or limited to zero results never starts.
        let deadline = request.time_budget.map(|b| Instant::now() + b);
        if request.cancel.as_ref().is_some_and(|c| c.is_cancelled()) {
            return Ok(QueryResponse::empty(Termination::Cancelled));
        }
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Ok(QueryResponse::empty(Termination::DeadlineExceeded));
        }
        if request.limit == Some(0) {
            return Ok(QueryResponse::empty(Termination::LimitReached));
        }

        let config = PathEnumConfig {
            tau: request.tau.unwrap_or(self.config.tau),
            force: request.method.or(self.config.force),
        };

        // Intra-query parallelism: plain (unconstrained) requests with
        // threads != 1 fan the search out over a scoped worker pool; the
        // constraint executors below stay sequential for now.
        let threads = crate::parallel::resolve_threads(request.threads);
        if threads > 1 && matches!(request.constraint, ConstraintSpec::None) {
            return Ok(self.execute_parallel(query, config, request, deadline, threads, sink));
        }

        let mut control =
            ControlledSink::new(sink, request.limit, deadline, request.cancel.clone());

        let report = match &request.constraint {
            ConstraintSpec::None => {
                let build_start = Instant::now();
                let (index, bfs_time) = Index::build_reusing(self.graph, query, &mut self.scratch);
                let build_time = build_start.elapsed();
                path_enum_on_index_with_build(&index, config, &mut control, build_time, bfs_time)
            }
            ConstraintSpec::Predicate(predicate) => {
                // Appendix E: apply the predicate to G, then run the
                // regular pipeline on the surviving subgraph. The filter
                // pass is attributed to index build time.
                let build_start = Instant::now();
                let filtered = filtered_graph(self.graph, predicate);
                let (index, bfs_time) = Index::build_reusing(&filtered, query, &mut self.scratch);
                let build_time = build_start.elapsed();
                path_enum_on_index_with_build(&index, config, &mut control, build_time, bfs_time)
            }
            ConstraintSpec::Accumulative(_) | ConstraintSpec::Automaton { .. } => {
                let build_start = Instant::now();
                let (index, bfs_time) = Index::build_reusing(self.graph, query, &mut self.scratch);
                let mut timings = PhaseTimings {
                    bfs: bfs_time,
                    index_build: build_start.elapsed(),
                    ..PhaseTimings::default()
                };
                let choice = choose_method(&index, config, &mut timings);
                let mut counters = Counters::default();
                let enum_start = Instant::now();
                match (&request.constraint, choice.method) {
                    (ConstraintSpec::Accumulative(acc), Method::IdxDfs) => {
                        acc.dfs(&index, &mut control, &mut counters);
                    }
                    (ConstraintSpec::Accumulative(acc), Method::IdxJoin) => {
                        let cut = choice.cut.expect("choose_method sets the cut for IDX-JOIN");
                        acc.join(&index, cut, &mut control, &mut counters);
                    }
                    (
                        ConstraintSpec::Automaton {
                            automaton,
                            label_of,
                        },
                        Method::IdxDfs,
                    ) => {
                        crate::constraints::automaton_dfs(
                            &index,
                            automaton,
                            label_of,
                            &mut control,
                            &mut counters,
                        );
                    }
                    (
                        ConstraintSpec::Automaton {
                            automaton,
                            label_of,
                        },
                        Method::IdxJoin,
                    ) => {
                        let cut = choice.cut.expect("choose_method sets the cut for IDX-JOIN");
                        automaton_join(
                            &index,
                            cut,
                            automaton,
                            label_of.as_ref(),
                            &mut control,
                            &mut counters,
                        );
                    }
                    _ => unreachable!("outer match restricts the constraint"),
                }
                timings.enumeration = enum_start.elapsed();
                RunReport {
                    method: choice.method,
                    timings,
                    counters,
                    preliminary_estimate: choice.preliminary,
                    full_estimate: choice.full_estimate,
                    cut_position: choice.cut,
                    index_bytes: index.heap_bytes(),
                    index_edges: index.num_edges(),
                }
            }
        };

        let termination = control.termination();
        let mut report = report;
        if termination.is_early() {
            // Enumerators count a result *before* offering it to the
            // sink; when a stopping rule refuses that emission the
            // delivered count is authoritative.
            report.counters.results = control.emitted();
        }
        Ok(QueryResponse {
            report,
            termination,
            paths: Vec::new(),
        })
    }

    /// The parallel arm of [`execute_into`](Self::execute_into): same
    /// pipeline front half (scratch-reusing index build, estimate,
    /// method choice), then a scoped worker pool under one
    /// [`SharedControl`](crate::parallel::SharedControl) instead of a
    /// [`ControlledSink`]. Results reach `sink` pre-merged in the
    /// canonical partition order.
    fn execute_parallel(
        &mut self,
        query: Query,
        config: PathEnumConfig,
        request: &QueryRequest<'_>,
        deadline: Option<Instant>,
        threads: usize,
        sink: &mut dyn PathSink,
    ) -> QueryResponse {
        let build_start = Instant::now();
        let (index, bfs_time) = Index::build_reusing(self.graph, query, &mut self.scratch);
        let mut timings = PhaseTimings {
            bfs: bfs_time,
            index_build: build_start.elapsed(),
            ..PhaseTimings::default()
        };
        let choice = choose_method(&index, config, &mut timings);
        let control =
            crate::parallel::SharedControl::new(request.limit, deadline, request.cancel.clone());
        let mut counters = Counters::default();
        let enum_start = Instant::now();
        match choice.method {
            Method::IdxDfs => {
                crate::parallel::parallel_dfs(&index, threads, &control, sink, &mut counters);
            }
            Method::IdxJoin => {
                let cut = choice.cut.expect("choose_method sets the cut for IDX-JOIN");
                crate::parallel::parallel_join(&index, cut, threads, &control, sink, &mut counters);
            }
        }
        timings.enumeration = enum_start.elapsed();

        let termination = control.termination();
        let mut report = RunReport {
            method: choice.method,
            timings,
            counters,
            preliminary_estimate: choice.preliminary,
            full_estimate: choice.full_estimate,
            cut_position: choice.cut,
            index_bytes: index.heap_bytes(),
            index_edges: index.num_edges(),
        };
        if termination.is_early() {
            // Workers count a result before the shared budget can refuse
            // it; the admitted count is authoritative.
            report.counters.results = control.delivered();
        }
        QueryResponse {
            report,
            termination,
            paths: Vec::new(),
        }
    }

    /// Builds the index for a [`QueryRequest`] (reusing scratch) and
    /// returns a pull-based [`PathStream`] over its results.
    ///
    /// The DFS advances only while the caller pulls; dropping the stream
    /// abandons the remaining search at zero cost. Constraint requests
    /// yield exactly the constrained path set (predicates restrict the
    /// enumerated subgraph; accumulative/automaton checks filter
    /// complete paths).
    pub fn stream<'q>(
        &mut self,
        request: &'q QueryRequest<'q>,
    ) -> Result<PathStream<'q>, PathEnumError> {
        let query = request.validate(self.graph.num_vertices())?;
        self.queries_served += 1;
        let index = match &request.constraint {
            ConstraintSpec::Predicate(predicate) => {
                let filtered = filtered_graph(self.graph, predicate);
                Index::build_reusing(&filtered, query, &mut self.scratch).0
            }
            _ => Index::build_reusing(self.graph, query, &mut self.scratch).0,
        };
        Ok(PathStream::new(index, request))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::test_support::*;
    use crate::optimizer::path_enum;
    use crate::sink::CollectingSink;
    use pathenum_graph::generators::erdos_renyi;

    #[test]
    fn engine_matches_one_shot_api_across_many_queries() {
        let g = erdos_renyi(60, 350, 12);
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        for t in 1..30u32 {
            let q = Query::new(0, t, 4).unwrap();
            let mut from_engine = CollectingSink::default();
            let engine_report = engine.run(q, &mut from_engine).unwrap();
            let mut one_shot = CollectingSink::default();
            let direct_report = path_enum(&g, q, PathEnumConfig::default(), &mut one_shot).unwrap();
            assert_eq!(from_engine.sorted_paths(), one_shot.sorted_paths(), "t={t}");
            assert_eq!(
                engine_report.counters.results,
                direct_report.counters.results
            );
            assert_eq!(engine_report.index_edges, direct_report.index_edges);
        }
        assert_eq!(engine.queries_served(), 29);
    }

    #[test]
    fn scratch_reuse_survives_empty_queries() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        // Empty (reverse) query, then a real one: stale scratch must not
        // leak between them.
        let mut sink = CollectingSink::default();
        engine.run(Query::new(T, S, 4).unwrap(), &mut sink).unwrap();
        assert!(sink.paths.is_empty());
        let mut sink = CollectingSink::default();
        engine.run(Query::new(S, T, 4).unwrap(), &mut sink).unwrap();
        assert_eq!(sink.paths.len(), 5);
    }

    #[test]
    fn build_index_is_equivalent_to_standalone_build() {
        let g = figure1_graph();
        let q = Query::new(S, T, 4).unwrap();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let from_engine = engine.build_index(q);
        let standalone = Index::build(&g, q);
        assert_eq!(from_engine.num_vertices(), standalone.num_vertices());
        assert_eq!(from_engine.num_edges(), standalone.num_edges());
    }

    #[test]
    fn run_rejects_out_of_range_endpoints_instead_of_panicking() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let mut sink = CollectingSink::default();
        let err = engine
            .run(Query::new(0, 999, 4).unwrap(), &mut sink)
            .unwrap_err();
        assert_eq!(err, PathEnumError::VertexOutOfRange(999));
        assert_eq!(
            engine.queries_served(),
            0,
            "rejected queries are not served"
        );
    }

    #[test]
    fn execute_matches_run_on_figure1() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let request = QueryRequest::paths(S, T).max_hops(4).collect_paths(true);
        let response = engine.execute(&request).unwrap();
        assert_eq!(response.termination, Termination::Completed);
        assert_eq!(response.num_results(), 5);
        assert_eq!(response.paths.len(), 5);

        let mut sink = CollectingSink::default();
        engine.run(Query::new(S, T, 4).unwrap(), &mut sink).unwrap();
        let mut from_execute = response.paths;
        from_execute.sort_unstable();
        assert_eq!(from_execute, sink.sorted_paths());
    }

    #[test]
    fn execute_reports_limit() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let request = QueryRequest::paths(S, T)
            .max_hops(4)
            .limit(2)
            .collect_paths(true);
        let response = engine.execute(&request).unwrap();
        assert_eq!(response.termination, Termination::LimitReached);
        assert_eq!(response.paths.len(), 2);
        // A limit of zero never starts the search.
        let response = engine
            .execute(&QueryRequest::paths(S, T).max_hops(4).limit(0))
            .unwrap();
        assert_eq!(response.termination, Termination::LimitReached);
        assert_eq!(response.num_results(), 0);
    }

    #[test]
    fn execute_reports_zero_deadline_without_panicking() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let request = QueryRequest::paths(S, T)
            .max_hops(4)
            .time_budget(std::time::Duration::ZERO);
        let response = engine.execute(&request).unwrap();
        assert_eq!(response.termination, Termination::DeadlineExceeded);
        assert_eq!(response.num_results(), 0);
    }

    #[test]
    fn execute_reports_pre_cancelled_token() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let token = crate::request::CancelToken::new();
        token.cancel();
        let request = QueryRequest::paths(S, T).max_hops(4).cancel_token(token);
        let response = engine.execute(&request).unwrap();
        assert_eq!(response.termination, Termination::Cancelled);
        assert_eq!(response.num_results(), 0);
    }

    #[test]
    fn early_termination_reports_delivered_count() {
        // num_results must equal the paths actually delivered, even
        // though enumerators count a result before offering it to the
        // sink (the refused emission must not be counted).
        let g = pathenum_graph::generators::complete_digraph(8);
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        for limit in [1u64, 3, 7] {
            let request = QueryRequest::paths(0, 7)
                .max_hops(4)
                .limit(limit)
                .collect_paths(true);
            let response = engine.execute(&request).unwrap();
            assert_eq!(response.termination, Termination::LimitReached);
            assert_eq!(response.num_results(), limit);
            assert_eq!(response.paths.len() as u64, limit);
        }
    }

    #[test]
    fn stream_agrees_with_execute() {
        let g = erdos_renyi(40, 220, 3);
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        for t in 1..10u32 {
            let request = QueryRequest::paths(0, t).max_hops(4).collect_paths(true);
            let mut from_execute = engine.execute(&request).unwrap().paths;
            from_execute.sort_unstable();
            let mut from_stream: Vec<Vec<u32>> = engine.stream(&request).unwrap().collect();
            from_stream.sort_unstable();
            assert_eq!(from_execute, from_stream, "t={t}");
        }
    }

    #[test]
    fn threaded_execute_matches_sequential_set_and_order() {
        let g = erdos_renyi(50, 320, 11);
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        for t in 1..8u32 {
            let sequential = engine
                .execute(&QueryRequest::paths(0, t).max_hops(5).collect_paths(true))
                .unwrap();
            let mut orders: Vec<Vec<Vec<u32>>> = Vec::new();
            for threads in [2usize, 4, 8] {
                let parallel = engine
                    .execute(
                        &QueryRequest::paths(0, t)
                            .max_hops(5)
                            .threads(threads)
                            .collect_paths(true),
                    )
                    .unwrap();
                assert_eq!(parallel.termination, Termination::Completed);
                assert_eq!(parallel.num_results(), sequential.num_results(), "t={t}");
                let mut sorted = parallel.paths.clone();
                sorted.sort_unstable();
                let mut expected = sequential.paths.clone();
                expected.sort_unstable();
                assert_eq!(sorted, expected, "t={t} threads={threads}");
                orders.push(parallel.paths);
            }
            for pair in orders.windows(2) {
                assert_eq!(pair[0], pair[1], "merge order varies with thread count");
            }
        }
    }

    #[test]
    fn threaded_execute_reports_exact_limit() {
        let g = pathenum_graph::generators::complete_digraph(9);
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        for limit in [1u64, 5, 40] {
            let response = engine
                .execute(
                    &QueryRequest::paths(0, 8)
                        .max_hops(4)
                        .threads(4)
                        .limit(limit)
                        .collect_paths(true),
                )
                .unwrap();
            assert_eq!(response.termination, Termination::LimitReached);
            assert_eq!(response.num_results(), limit);
            assert_eq!(response.paths.len() as u64, limit);
        }
    }

    #[test]
    fn threaded_execute_honors_forced_methods() {
        let g = erdos_renyi(40, 260, 5);
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        for method in [Method::IdxDfs, Method::IdxJoin] {
            let sequential = engine
                .execute(
                    &QueryRequest::paths(0, 1)
                        .max_hops(4)
                        .method(method)
                        .collect_paths(true),
                )
                .unwrap();
            let parallel = engine
                .execute(
                    &QueryRequest::paths(0, 1)
                        .max_hops(4)
                        .method(method)
                        .threads(4)
                        .collect_paths(true),
                )
                .unwrap();
            assert_eq!(parallel.report.method, method);
            let mut a = sequential.paths;
            let mut b = parallel.paths;
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{method}");
        }
    }

    #[test]
    fn threaded_execute_with_auto_thread_count_works() {
        let g = figure1_graph();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let response = engine
            .execute(
                &QueryRequest::paths(S, T)
                    .max_hops(4)
                    .threads(0)
                    .collect_paths(true),
            )
            .unwrap();
        assert_eq!(response.num_results(), 5);
    }

    #[test]
    fn forced_method_override_is_respected() {
        let g = erdos_renyi(40, 260, 5);
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let dfs = engine
            .execute(&QueryRequest::paths(0, 1).max_hops(4).method(Method::IdxDfs))
            .unwrap();
        let join = engine
            .execute(
                &QueryRequest::paths(0, 1)
                    .max_hops(4)
                    .method(Method::IdxJoin),
            )
            .unwrap();
        assert_eq!(dfs.report.method, Method::IdxDfs);
        assert_eq!(join.report.method, Method::IdxJoin);
        assert_eq!(dfs.num_results(), join.num_results());
    }
}

//! Query-set generation (Section 7.1).
//!
//! For each graph, vertices are split into `V'` (top 10% by total degree)
//! and `V''` (the rest). A query set draws `(s, t)` uniformly from one of
//! the four settings `{V', V''} x {V', V''}`, keeping only pairs with
//! `s != t` and `distance(s, t) <= 3` (so a result plausibly exists and
//! the query is not trivially answered by the existence BFS).

use pathenum::query::Query;
use pathenum_graph::bfs::st_distance;
use pathenum_graph::properties::degree_split;
use pathenum_graph::{CsrGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which degree classes `s` and `t` are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuerySetting {
    /// `s, t ∈ V'` — the hardest setting, reported by default in §7.
    HighHigh,
    /// `s ∈ V'`, `t ∈ V''`.
    HighLow,
    /// `s ∈ V''`, `t ∈ V'`.
    LowHigh,
    /// `s, t ∈ V''`.
    LowLow,
}

impl QuerySetting {
    /// All four settings.
    pub fn all() -> [QuerySetting; 4] {
        [
            QuerySetting::HighHigh,
            QuerySetting::HighLow,
            QuerySetting::LowHigh,
            QuerySetting::LowLow,
        ]
    }
}

impl std::fmt::Display for QuerySetting {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            QuerySetting::HighHigh => "V'xV'",
            QuerySetting::HighLow => "V'xV''",
            QuerySetting::LowHigh => "V''xV'",
            QuerySetting::LowLow => "V''xV''",
        };
        write!(f, "{s}")
    }
}

/// Configuration for [`generate_queries`].
#[derive(Debug, Clone, Copy)]
pub struct QueryGenConfig {
    /// Source/target degree classes.
    pub setting: QuerySetting,
    /// Number of queries to generate.
    pub count: usize,
    /// Hop constraint attached to every query.
    pub k: u32,
    /// Admission rule: `distance(s, t) <= max_st_distance` (the paper
    /// uses 3).
    pub max_st_distance: u32,
    /// Fraction of vertices in `V'` (the paper uses 0.1).
    pub high_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl QueryGenConfig {
    /// The paper's default: `s, t ∈ V'`, `distance <= 3`, top 10%.
    pub fn paper_default(count: usize, k: u32, seed: u64) -> Self {
        QueryGenConfig {
            setting: QuerySetting::HighHigh,
            count,
            k,
            max_st_distance: 3,
            high_fraction: 0.1,
            seed,
        }
    }
}

/// Generates a query set. May return fewer than `count` queries if the
/// graph cannot supply enough admissible pairs (the attempt budget is
/// `200 x count`).
pub fn generate_queries(graph: &CsrGraph, config: QueryGenConfig) -> Vec<Query> {
    let (high, low) = degree_split(graph, config.high_fraction);
    let (s_pool, t_pool): (&[VertexId], &[VertexId]) = match config.setting {
        QuerySetting::HighHigh => (&high, &high),
        QuerySetting::HighLow => (&high, &low),
        QuerySetting::LowHigh => (&low, &high),
        QuerySetting::LowLow => (&low, &low),
    };
    if s_pool.is_empty() || t_pool.is_empty() {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut queries = Vec::with_capacity(config.count);
    let mut attempts = 0usize;
    let attempt_budget = config.count.saturating_mul(200).max(1000);
    while queries.len() < config.count && attempts < attempt_budget {
        attempts += 1;
        let s = s_pool[rng.gen_range(0..s_pool.len())];
        let t = t_pool[rng.gen_range(0..t_pool.len())];
        if s == t {
            continue;
        }
        let d = st_distance(graph, s, t, config.max_st_distance);
        if d > config.max_st_distance {
            continue;
        }
        queries.push(Query::new(s, t, config.k).expect("validated endpoints"));
    }
    queries
}

/// Expands a distinct query set into the skewed read stream the serving
/// experiments replay: every query recurs `repeats` times, round-robin
/// (`q0 q1 .. qn q0 q1 ..`), which is the worst case for a tiny cache
/// and representative of production read skew for a large one.
pub fn skewed_stream(distinct: &[Query], repeats: usize) -> Vec<Query> {
    distinct
        .iter()
        .cycle()
        .take(distinct.len() * repeats)
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn generates_requested_count_on_connected_graphs() {
        let g = datasets::gg();
        let cfg = QueryGenConfig::paper_default(50, 6, 7);
        let queries = generate_queries(&g, cfg);
        assert_eq!(queries.len(), 50);
        for q in &queries {
            assert_ne!(q.s, q.t);
            assert_eq!(q.k, 6);
            assert!(st_distance(&g, q.s, q.t, 3) <= 3);
        }
    }

    #[test]
    fn settings_respect_partitions() {
        let g = datasets::ep();
        let (high, low) = degree_split(&g, 0.1);
        let high_set: std::collections::HashSet<_> = high.iter().copied().collect();
        let low_set: std::collections::HashSet<_> = low.iter().copied().collect();
        let cfg = QueryGenConfig {
            setting: QuerySetting::HighLow,
            count: 20,
            k: 4,
            max_st_distance: 3,
            high_fraction: 0.1,
            seed: 3,
        };
        for q in generate_queries(&g, cfg) {
            assert!(high_set.contains(&q.s));
            assert!(low_set.contains(&q.t));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let g = datasets::gg();
        let cfg = QueryGenConfig::paper_default(10, 6, 42);
        assert_eq!(generate_queries(&g, cfg), generate_queries(&g, cfg));
    }

    #[test]
    fn empty_result_when_graph_disconnected() {
        // A graph of isolated pairs cannot satisfy distance <= 3 between
        // high-degree vertices often; extreme case: no edges at all.
        let g = pathenum_graph::generators::erdos_renyi(50, 0, 0);
        let cfg = QueryGenConfig::paper_default(5, 4, 1);
        assert!(generate_queries(&g, cfg).is_empty());
    }

    #[test]
    fn skewed_stream_is_round_robin() {
        let g = datasets::gg();
        let distinct = generate_queries(&g, QueryGenConfig::paper_default(3, 4, 11));
        let stream = skewed_stream(&distinct, 4);
        assert_eq!(stream.len(), 12);
        for (i, q) in stream.iter().enumerate() {
            assert_eq!(*q, distinct[i % distinct.len()]);
        }
        assert!(skewed_stream(&[], 5).is_empty());
    }

    #[test]
    fn all_four_settings_produce_queries() {
        let g = datasets::ep();
        for setting in QuerySetting::all() {
            let cfg = QueryGenConfig {
                setting,
                count: 10,
                k: 4,
                max_st_distance: 3,
                high_fraction: 0.1,
                seed: 9,
            };
            let queries = generate_queries(&g, cfg);
            assert!(!queries.is_empty(), "setting {setting} generated nothing");
        }
    }
}

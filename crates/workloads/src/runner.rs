//! Per-query measurement and aggregation (the metrics of Section 7.1).
//!
//! * **query time** — start to finish, capped by a per-query time limit
//!   (the paper caps at two minutes; proxies use a scaled default);
//! * **throughput** — results per second at the moment the query ends
//!   (including when it is cut off by the limit);
//! * **response time** — start until the first `response_limit` (1000)
//!   results.
//!
//! Plus the aggregation helpers behind the tables and figures: means,
//! percentiles, CDF points, and least-squares regression on log-log data
//! (Figures 10/11).

use std::time::{Duration, Instant};

use pathenum::query::Query;
use pathenum::sink::{CountingSink, PathSink, SearchControl};
use pathenum::{ControlledSink, PlanCacheStats, QueryEngine, QueryRequest, Termination};
use pathenum_graph::CsrGraph;

use crate::algorithms::{AlgoReport, Algorithm};

/// Measurement configuration.
#[derive(Debug, Clone, Copy)]
pub struct MeasureConfig {
    /// Per-query wall-clock cap. The paper uses 120 s on the full-size
    /// datasets; the scaled default keeps full table runs in minutes.
    pub time_limit: Duration,
    /// Result count defining response time (the paper uses 1000).
    pub response_limit: u64,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            time_limit: Duration::from_secs(2),
            response_limit: 1000,
        }
    }
}

/// Outcome of measuring one query with one algorithm.
#[derive(Debug, Clone)]
pub struct QueryMeasurement {
    /// The query that ran.
    pub query: Query,
    /// Wall-clock query time (capped at the limit when timed out).
    pub elapsed: Duration,
    /// Results found before finishing or hitting the limit.
    pub results: u64,
    /// Whether the time limit cut the query off.
    pub timed_out: bool,
    /// The algorithm's phase/counter report.
    pub report: AlgoReport,
}

impl QueryMeasurement {
    /// Results per second over the measured window.
    pub fn throughput(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            self.results as f64 / 1e-9
        } else {
            self.results as f64 / secs
        }
    }
}

/// A sink that counts results and aborts on a deadline and/or an emission
/// limit — the measuring instrument for all three paper metrics.
///
/// Reimplemented as a thin adapter over the request layer's
/// [`ControlledSink`] (mirroring the deprecated
/// [`LimitSink`](pathenum::sink::LimitSink) treatment), so the workload
/// runner and the service API share one set of stopping-rule semantics
/// instead of two near-identical censoring implementations.
pub struct BoundedSink {
    /// Results seen (censored at the limit).
    pub count: u64,
    /// Set when the deadline aborted the run.
    pub timed_out: bool,
    inner: ControlledSink<CountingSink>,
}

impl BoundedSink {
    /// A sink stopping at `limit` results and/or after `budget` time.
    pub fn new(limit: Option<u64>, budget: Option<Duration>) -> Self {
        BoundedSink {
            count: 0,
            timed_out: false,
            inner: ControlledSink::new(
                CountingSink::default(),
                limit,
                budget.map(|b| Instant::now() + b),
                None,
            ),
        }
    }

    fn sync(&mut self) {
        self.count = self.inner.emitted();
        self.timed_out = self.inner.termination() == Termination::DeadlineExceeded;
    }
}

impl PathSink for BoundedSink {
    #[inline]
    fn emit(&mut self, path: &[u32]) -> SearchControl {
        let control = self.inner.emit(path);
        self.sync();
        control
    }

    #[inline]
    fn probe(&mut self) -> SearchControl {
        let control = self.inner.probe();
        self.sync();
        control
    }
}

/// Measures the *query time* metric: full enumeration under the time cap.
pub fn run_query(
    algo: Algorithm,
    graph: &CsrGraph,
    query: Query,
    config: MeasureConfig,
) -> QueryMeasurement {
    let mut sink = BoundedSink::new(None, Some(config.time_limit));
    let start = Instant::now();
    let report = algo.run(graph, query, &mut sink);
    let mut elapsed = start.elapsed();
    let timed_out = sink.timed_out || elapsed > config.time_limit;
    if timed_out {
        // The paper sets the query time of killed queries to the limit.
        elapsed = config.time_limit;
    }
    QueryMeasurement {
        query,
        elapsed,
        results: sink.count,
        timed_out,
        report,
    }
}

/// Measures the *response time* metric: time to the first
/// `config.response_limit` results (or to completion if fewer exist),
/// still bounded by the time cap.
pub fn measure_response_time(
    algo: Algorithm,
    graph: &CsrGraph,
    query: Query,
    config: MeasureConfig,
) -> Duration {
    let mut sink = BoundedSink::new(Some(config.response_limit), Some(config.time_limit));
    let start = Instant::now();
    algo.run(graph, query, &mut sink);
    start.elapsed().min(config.time_limit)
}

/// Aggregate of a query set with one algorithm — one Table 3 cell triple.
#[derive(Debug, Clone)]
pub struct SetSummary {
    /// Per-query measurements, in query order.
    pub measurements: Vec<QueryMeasurement>,
    /// Arithmetic mean query time in milliseconds.
    pub mean_query_time_ms: f64,
    /// Arithmetic mean per-query throughput (results/second).
    pub mean_throughput: f64,
    /// Fraction of queries cut off by the time limit.
    pub timeout_fraction: f64,
}

/// Runs a whole query set (Table 3 style).
pub fn run_query_set(
    algo: Algorithm,
    graph: &CsrGraph,
    queries: &[Query],
    config: MeasureConfig,
) -> SetSummary {
    let measurements: Vec<QueryMeasurement> = queries
        .iter()
        .map(|&q| run_query(algo, graph, q, config))
        .collect();
    summarize(measurements)
}

/// Builds a [`SetSummary`] from raw measurements.
pub fn summarize(measurements: Vec<QueryMeasurement>) -> SetSummary {
    let n = measurements.len().max(1) as f64;
    let mean_query_time_ms = measurements
        .iter()
        .map(|m| m.elapsed.as_secs_f64() * 1e3)
        .sum::<f64>()
        / n;
    let mean_throughput = measurements.iter().map(|m| m.throughput()).sum::<f64>() / n;
    let timeout_fraction = measurements.iter().filter(|m| m.timed_out).count() as f64 / n;
    SetSummary {
        measurements,
        mean_query_time_ms,
        mean_throughput,
        timeout_fraction,
    }
}

/// Aggregate of serving a (possibly repetitive) request stream through a
/// caching [`QueryEngine`] — the serving-side counterpart of
/// [`run_query_set`], reporting plan-cache effectiveness alongside
/// latency. Real request streams are skewed; the cache hit rate is the
/// fraction of requests that skipped BFS + index build entirely.
#[derive(Debug, Clone)]
pub struct CachedStreamSummary {
    /// Per-request wall-clock latencies, in request order.
    pub latencies: Vec<Duration>,
    /// Total wall-clock across the stream.
    pub total: Duration,
    /// Total results produced.
    pub results: u64,
    /// Plan-cache statistics accumulated *by this stream* (deltas, not
    /// the engine's lifetime counters).
    pub cache: PlanCacheStats,
}

impl CachedStreamSummary {
    /// Mean per-request latency in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        mean_ms(&self.latencies)
    }

    /// Fraction of requests served from the plan cache.
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }
}

/// Serves `queries` through `engine` in order, each bounded by the
/// per-query time limit, and reports latency plus the plan-cache
/// hits/misses/invalidations the stream generated.
pub fn run_cached_stream(
    engine: &mut QueryEngine<'_>,
    queries: &[Query],
    config: MeasureConfig,
) -> CachedStreamSummary {
    let before = engine.cache_stats();
    let mut latencies = Vec::with_capacity(queries.len());
    let mut results = 0u64;
    let total_start = Instant::now();
    for &query in queries {
        let request = QueryRequest::from_query(query).time_budget(config.time_limit);
        let start = Instant::now();
        let response = engine
            .execute(&request)
            .expect("harness queries are in range for the graph");
        latencies.push(start.elapsed());
        results += response.num_results();
    }
    let total = total_start.elapsed();
    let after = engine.cache_stats();
    CachedStreamSummary {
        latencies,
        total,
        results,
        cache: PlanCacheStats {
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            invalidations: after.invalidations - before.invalidations,
            evictions: after.evictions - before.evictions,
            retained: after.retained - before.retained,
        },
    }
}

/// Mean of durations in milliseconds.
pub fn mean_ms(durations: &[Duration]) -> f64 {
    if durations.is_empty() {
        return 0.0;
    }
    durations.iter().map(|d| d.as_secs_f64() * 1e3).sum::<f64>() / durations.len() as f64
}

/// The `pct`-th percentile (0..=100) of a set of durations, in
/// milliseconds, by the nearest-rank method (Figure 8's 99.9% latency).
pub fn percentile_ms(durations: &[Duration], pct: f64) -> f64 {
    if durations.is_empty() {
        return 0.0;
    }
    let mut sorted: Vec<Duration> = durations.to_vec();
    sorted.sort_unstable();
    let rank = ((pct / 100.0) * sorted.len() as f64).ceil() as usize;
    let idx = rank.clamp(1, sorted.len()) - 1;
    sorted[idx].as_secs_f64() * 1e3
}

/// Cumulative-distribution points `(ms, fraction <= ms)` (Figure 16).
pub fn cdf_points(durations: &[Duration]) -> Vec<(f64, f64)> {
    let mut sorted: Vec<f64> = durations.iter().map(|d| d.as_secs_f64() * 1e3).collect();
    sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let n = sorted.len() as f64;
    sorted
        .into_iter()
        .enumerate()
        .map(|(i, ms)| (ms, (i + 1) as f64 / n))
        .collect()
}

/// Ordinary least squares fit `y = slope * x + intercept` with `r^2`.
///
/// Figures 10/11 regress `log(enumeration time)` on `log(index size)` and
/// `log(#results)`; callers pass already-logged values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Regression {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r_squared: f64,
}

/// Least-squares regression over paired samples. Returns `None` with
/// fewer than two points or zero variance in `x`.
pub fn linear_regression(xs: &[f64], ys: &[f64]) -> Option<Regression> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let n = xs.len() as f64;
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        sxx += (x - mean_x) * (x - mean_x);
        sxy += (x - mean_x) * (y - mean_y);
        syy += (y - mean_y) * (y - mean_y);
    }
    if sxx == 0.0 {
        return None;
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    Some(Regression {
        slope,
        intercept,
        r_squared,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use crate::querygen::{generate_queries, QueryGenConfig};

    #[test]
    fn run_query_counts_results() {
        let g = datasets::gg();
        let queries = generate_queries(&g, QueryGenConfig::paper_default(5, 4, 1));
        for q in queries {
            let m = run_query(Algorithm::IdxDfs, &g, q, MeasureConfig::default());
            assert!(!m.timed_out, "tiny query should not time out");
            assert_eq!(m.results, m.report.counters.results);
        }
    }

    #[test]
    fn response_time_not_exceeding_query_time_much() {
        let g = datasets::gg();
        let q = generate_queries(&g, QueryGenConfig::paper_default(1, 6, 2))[0];
        let cfg = MeasureConfig::default();
        let response = measure_response_time(Algorithm::IdxDfs, &g, q, cfg);
        assert!(response <= cfg.time_limit);
    }

    #[test]
    fn bounded_sink_stops_at_limit() {
        let mut sink = BoundedSink::new(Some(3), None);
        assert_eq!(sink.emit(&[0]), SearchControl::Continue);
        assert_eq!(sink.emit(&[0]), SearchControl::Continue);
        assert_eq!(sink.emit(&[0]), SearchControl::Stop);
        assert!(!sink.timed_out);
    }

    #[test]
    fn bounded_sink_censors_identically_to_controlled_sink() {
        // Regression for the adapter rewrite: on the same enumeration,
        // BoundedSink (the workload instrument) and a raw ControlledSink
        // (the request-layer rule) must admit exactly the same number of
        // results and stop at the same emission.
        use pathenum::{CountingSink, Index};
        let g = datasets::gg();
        for limit in [1u64, 10, 100, 1_000] {
            let q = generate_queries(&g, QueryGenConfig::paper_default(1, 5, 7))[0];
            let index = Index::build(&g, q);

            let mut bounded = BoundedSink::new(Some(limit), None);
            let mut counters = pathenum::Counters::default();
            let bounded_control = pathenum::enumerate::idx_dfs(&index, &mut bounded, &mut counters);

            let mut controlled =
                pathenum::ControlledSink::new(CountingSink::default(), Some(limit), None, None);
            let mut counters = pathenum::Counters::default();
            let controlled_control =
                pathenum::enumerate::idx_dfs(&index, &mut controlled, &mut counters);

            assert_eq!(bounded.count, controlled.emitted(), "limit={limit}");
            assert_eq!(bounded_control, controlled_control, "limit={limit}");
            assert_eq!(
                controlled.emitted() == limit,
                controlled.termination() == pathenum::Termination::LimitReached,
                "limit={limit}"
            );
        }
    }

    #[test]
    fn bounded_sink_times_out() {
        let mut sink = BoundedSink::new(None, Some(Duration::ZERO));
        let mut stopped = false;
        for _ in 0..1000 {
            if sink.emit(&[0]) == SearchControl::Stop {
                stopped = true;
                break;
            }
        }
        assert!(stopped);
        assert!(sink.timed_out);
    }

    #[test]
    fn summary_statistics() {
        let g = datasets::gg();
        let queries = generate_queries(&g, QueryGenConfig::paper_default(5, 4, 3));
        let summary = run_query_set(Algorithm::PathEnum, &g, &queries, MeasureConfig::default());
        assert_eq!(summary.measurements.len(), 5);
        assert!(summary.mean_query_time_ms >= 0.0);
        assert_eq!(summary.timeout_fraction, 0.0);
    }

    #[test]
    fn cached_stream_reports_hits_for_repeated_queries() {
        use pathenum::PathEnumConfig;
        let g = datasets::gg();
        let distinct = generate_queries(&g, QueryGenConfig::paper_default(3, 4, 5));
        // A skewed stream: each distinct query repeated four times.
        let stream: Vec<Query> = distinct
            .iter()
            .cycle()
            .take(distinct.len() * 4)
            .copied()
            .collect();
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let summary = run_cached_stream(&mut engine, &stream, MeasureConfig::default());
        assert_eq!(summary.latencies.len(), stream.len());
        assert_eq!(summary.cache.misses, distinct.len() as u64);
        assert_eq!(
            summary.cache.hits,
            (stream.len() - distinct.len()) as u64,
            "every repeat is a hit"
        );
        assert!(summary.hit_rate() > 0.7);

        // The same stream with caching makes the same results.
        let mut cold_engine =
            QueryEngine::with_cache(&g, PathEnumConfig::default(), pathenum::PlanCache::new(0));
        let cold = run_cached_stream(&mut cold_engine, &stream, MeasureConfig::default());
        assert_eq!(cold.results, summary.results);
        assert_eq!(cold.cache.hits, 0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let ds: Vec<Duration> = (1..=10).map(Duration::from_millis).collect();
        assert_eq!(percentile_ms(&ds, 50.0), 5.0);
        assert_eq!(percentile_ms(&ds, 100.0), 10.0);
        assert_eq!(percentile_ms(&ds, 99.9), 10.0);
        assert_eq!(percentile_ms(&ds, 10.0), 1.0);
        assert_eq!(percentile_ms(&[], 50.0), 0.0);
    }

    #[test]
    fn cdf_is_monotone() {
        let ds: Vec<Duration> = [5u64, 1, 3, 2, 4]
            .iter()
            .map(|&m| Duration::from_millis(m))
            .collect();
        let cdf = cdf_points(&ds);
        assert_eq!(cdf.len(), 5);
        assert_eq!(cdf[0], (1.0, 0.2));
        assert_eq!(cdf[4], (5.0, 1.0));
        for w in cdf.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn regression_recovers_a_line() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [3.0, 5.0, 7.0, 9.0];
        let r = linear_regression(&xs, &ys).unwrap();
        assert!((r.slope - 2.0).abs() < 1e-12);
        assert!((r.intercept - 1.0).abs() < 1e-12);
        assert!((r.r_squared - 1.0).abs() < 1e-12);
        assert!(linear_regression(&[1.0], &[1.0]).is_none());
        assert!(linear_regression(&[1.0, 1.0], &[1.0, 2.0]).is_none());
    }

    #[test]
    fn throughput_positive_when_results_exist() {
        let g = datasets::gg();
        let q = generate_queries(&g, QueryGenConfig::paper_default(1, 5, 4))[0];
        let m = run_query(Algorithm::BcDfs, &g, q, MeasureConfig::default());
        if m.results > 0 {
            assert!(m.throughput() > 0.0);
        }
    }
}

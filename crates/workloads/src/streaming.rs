//! Streaming update→query workloads (the paper's Figure 8 scenario as a
//! serving benchmark).
//!
//! A stream interleaves edge mutations with hop-constrained path queries
//! at a configurable update:query mix. Queries are drawn from a small,
//! skew-sampled pool of high-degree endpoint pairs (real request streams
//! repeat), so a plan cache has something to hit — *if* it survives the
//! interleaved mutations. [`run_stream`] replays one stream under three
//! serving strategies:
//!
//! * [`SnapshotPerUpdate`](StreamStrategy::SnapshotPerUpdate) — the old
//!   pipeline: every update re-materializes an `O(n + m)` snapshot and
//!   queries run on the latest snapshot;
//! * [`Overlay`](StreamStrategy::Overlay) — queries run directly on the
//!   [`DynamicGraph`]'s borrowed overlay view (no materialization, no
//!   caching);
//! * [`OverlayCached`](StreamStrategy::OverlayCached) — overlay
//!   execution plus the surgically retained plan cache: entries whose
//!   recorded footprint is untouched by the delta keep serving across
//!   mutations.
//!
//! All three strategies must produce identical per-query result counts;
//! [`run_stream`] records them so harnesses can assert it.

use std::time::{Duration, Instant};

use pathenum::query::Query;
use pathenum::{
    DynamicEngine, PathEnumConfig, PlanCache, PlanCacheStats, QueryEngine, QueryRequest,
};
use pathenum_graph::{CsrGraph, DynamicGraph, VertexId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::querygen::{generate_queries, QueryGenConfig};

/// One operation of an update→query stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamOp {
    /// Insert the directed edge.
    Insert(VertexId, VertexId),
    /// Remove the directed edge.
    Remove(VertexId, VertexId),
    /// Evaluate the query on the graph as of this moment.
    Query(Query),
}

/// Configuration for [`generate_stream`].
#[derive(Debug, Clone, Copy)]
pub struct StreamConfig {
    /// Total operations in the stream.
    pub ops: usize,
    /// Fraction of operations that are queries (the rest are updates).
    pub query_fraction: f64,
    /// Fraction of *updates* that are removals (of a known edge); the
    /// rest insert fresh random edges.
    pub remove_fraction: f64,
    /// Hop constraint attached to every query.
    pub k: u32,
    /// Size of the distinct-query pool; queries are skew-sampled from it
    /// (low indices recur most).
    pub distinct_queries: usize,
    /// RNG seed (also seeds the query-pool generator).
    pub seed: u64,
}

impl StreamConfig {
    /// A laptop-scale default: 4 queries per update, 30% removals, a
    /// pool of 8 recurring queries.
    pub fn serving_default(ops: usize, k: u32, seed: u64) -> Self {
        StreamConfig {
            ops,
            query_fraction: 0.8,
            remove_fraction: 0.3,
            k,
            distinct_queries: 8,
            seed,
        }
    }
}

/// Generates a reproducible update→query stream over `graph`.
///
/// The query pool uses the paper's generator (high-degree endpoints,
/// `distance(s, t) <= 3`); pool draws are squared-uniform, so the head
/// of the pool dominates the stream (a skewed, cache-friendly request
/// distribution). Removals draw from edges known to exist at that point
/// (base edges or earlier stream insertions); insertions draw fresh
/// random pairs.
pub fn generate_stream(graph: &CsrGraph, config: &StreamConfig) -> Vec<StreamOp> {
    let pool = generate_queries(
        graph,
        QueryGenConfig::paper_default(config.distinct_queries.max(1), config.k, config.seed),
    );
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(0x5eed));
    let n = graph.num_vertices() as VertexId;
    if n < 2 {
        return Vec::new();
    }

    // Edges available for removal: a sample of base edges plus whatever
    // the stream itself inserts.
    let base_edges: Vec<(VertexId, VertexId)> = graph.edges().collect();
    let mut removable: Vec<(VertexId, VertexId)> = (0..512.min(base_edges.len()))
        .map(|_| base_edges[rng.gen_range(0..base_edges.len())])
        .collect();

    let mut ops = Vec::with_capacity(config.ops);
    while ops.len() < config.ops {
        if !pool.is_empty() && rng.gen_bool(config.query_fraction.clamp(0.0, 1.0)) {
            // Squared-uniform: index 0 is the hottest query.
            let r = rng.gen_range(0..1u64 << 32) as f64 / (1u64 << 32) as f64;
            let idx = ((r * r) * pool.len() as f64) as usize;
            ops.push(StreamOp::Query(pool[idx.min(pool.len() - 1)]));
        } else if !removable.is_empty() && rng.gen_bool(config.remove_fraction.clamp(0.0, 1.0)) {
            let idx = rng.gen_range(0..removable.len());
            let (u, v) = removable.swap_remove(idx);
            ops.push(StreamOp::Remove(u, v));
        } else {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            removable.push((u, v));
            ops.push(StreamOp::Insert(u, v));
        }
    }
    ops
}

/// How queries of a stream are served; see the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamStrategy {
    /// Re-materialize a [`CsrGraph`] snapshot after every update; serve
    /// queries from the latest snapshot (cache disabled — every epoch
    /// bump would evict it anyway).
    SnapshotPerUpdate,
    /// Serve queries on the live overlay view, cache disabled.
    Overlay,
    /// Serve queries on the live overlay view with the surgically
    /// retained plan cache.
    OverlayCached,
}

impl std::fmt::Display for StreamStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamStrategy::SnapshotPerUpdate => write!(f, "snapshot/update"),
            StreamStrategy::Overlay => write!(f, "overlay"),
            StreamStrategy::OverlayCached => write!(f, "overlay+cache"),
        }
    }
}

/// Outcome of replaying one stream under one strategy.
#[derive(Debug, Clone)]
pub struct StreamRunSummary {
    /// The strategy that ran.
    pub strategy: StreamStrategy,
    /// Per-query wall-clock latencies, in stream order.
    pub query_latencies: Vec<Duration>,
    /// Per-update wall-clock latencies (mutation + any re-snapshot).
    pub update_latencies: Vec<Duration>,
    /// Total wall-clock across the whole stream.
    pub total: Duration,
    /// Per-query result counts, in stream order — identical across
    /// strategies by construction; assert it.
    pub results: Vec<u64>,
    /// Plan-cache statistics (all zero for the cache-free strategies).
    pub cache: PlanCacheStats,
}

impl StreamRunSummary {
    /// Mean per-query latency in milliseconds.
    pub fn mean_query_ms(&self) -> f64 {
        crate::runner::mean_ms(&self.query_latencies)
    }

    /// Mean per-update latency in milliseconds.
    pub fn mean_update_ms(&self) -> f64 {
        crate::runner::mean_ms(&self.update_latencies)
    }

    /// Fraction of queries served from the plan cache.
    pub fn hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }
}

/// Replays `ops` over a fresh [`DynamicGraph`] on `base` under one
/// strategy. Each query is bounded by `limit` results when given.
pub fn run_stream(
    base: &CsrGraph,
    ops: &[StreamOp],
    strategy: StreamStrategy,
    config: PathEnumConfig,
    limit: Option<u64>,
) -> StreamRunSummary {
    let mut graph = DynamicGraph::new(base.clone());
    let mut snapshot = match strategy {
        StreamStrategy::SnapshotPerUpdate => Some(graph.snapshot()),
        _ => None,
    };
    // The overlay engines are re-created per query (the graph borrow
    // must lapse across updates); the cache value is what persists.
    let mut cache = Some(match strategy {
        StreamStrategy::OverlayCached => PlanCache::default(),
        _ => PlanCache::new(0),
    });

    let mut query_latencies = Vec::new();
    let mut update_latencies = Vec::new();
    let mut results = Vec::new();
    let total_start = Instant::now();
    for &op in ops {
        match op {
            StreamOp::Insert(u, v) | StreamOp::Remove(u, v) => {
                let start = Instant::now();
                let mutated = match op {
                    StreamOp::Insert(..) => graph.insert_edge(u, v),
                    _ => graph.remove_edge(u, v),
                };
                if mutated && matches!(strategy, StreamStrategy::SnapshotPerUpdate) {
                    snapshot = Some(graph.snapshot());
                }
                update_latencies.push(start.elapsed());
            }
            StreamOp::Query(query) => {
                let mut request = QueryRequest::from_query(query);
                if let Some(limit) = limit {
                    request = request.limit(limit);
                }
                let start = Instant::now();
                let count = match strategy {
                    StreamStrategy::SnapshotPerUpdate => {
                        let serving = snapshot.as_ref().expect("strategy keeps a snapshot");
                        let mut engine =
                            QueryEngine::with_cache(serving, config, PlanCache::new(0));
                        let response = engine
                            .execute(&request)
                            .expect("pool queries are valid for the graph");
                        response.num_results()
                    }
                    StreamStrategy::Overlay | StreamStrategy::OverlayCached => {
                        let mut engine = DynamicEngine::with_cache(
                            &graph,
                            config,
                            cache.take().expect("cache is always returned"),
                        );
                        let response = engine
                            .execute(&request)
                            .expect("pool queries are valid for the graph");
                        let count = response.num_results();
                        cache = Some(engine.into_cache());
                        count
                    }
                };
                query_latencies.push(start.elapsed());
                results.push(count);
            }
        }
    }
    let total = total_start.elapsed();
    StreamRunSummary {
        strategy,
        query_latencies,
        update_latencies,
        total,
        results,
        cache: cache
            .map(|c| c.stats())
            .expect("cache is always returned after the last query"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    fn strategies() -> [StreamStrategy; 3] {
        [
            StreamStrategy::SnapshotPerUpdate,
            StreamStrategy::Overlay,
            StreamStrategy::OverlayCached,
        ]
    }

    #[test]
    fn stream_generation_respects_the_mix() {
        let g = datasets::gg();
        let config = StreamConfig::serving_default(400, 4, 7);
        let ops = generate_stream(&g, &config);
        assert_eq!(ops.len(), 400);
        let queries = ops
            .iter()
            .filter(|op| matches!(op, StreamOp::Query(_)))
            .count();
        let updates = ops.len() - queries;
        assert!(queries > updates, "queries dominate at 0.8 fraction");
        assert!(updates > 0, "updates are interleaved");
        // Reproducible.
        assert_eq!(ops, generate_stream(&g, &config));
    }

    #[test]
    fn all_strategies_agree_on_every_query() {
        let g = datasets::gg();
        let ops = generate_stream(&g, &StreamConfig::serving_default(150, 4, 11));
        let runs: Vec<StreamRunSummary> = strategies()
            .into_iter()
            .map(|s| run_stream(&g, &ops, s, PathEnumConfig::default(), Some(500)))
            .collect();
        for pair in runs.windows(2) {
            assert_eq!(
                pair[0].results, pair[1].results,
                "{} vs {}",
                pair[0].strategy, pair[1].strategy
            );
        }
        let queries = ops
            .iter()
            .filter(|op| matches!(op, StreamOp::Query(_)))
            .count();
        for run in &runs {
            assert_eq!(run.results.len(), queries);
            assert_eq!(run.query_latencies.len(), queries);
        }
    }

    #[test]
    fn cached_strategy_hits_under_mutation_and_others_do_not_cache() {
        let g = datasets::gg();
        let ops = generate_stream(&g, &StreamConfig::serving_default(200, 4, 3));
        assert!(ops
            .iter()
            .any(|op| matches!(op, StreamOp::Insert(..) | StreamOp::Remove(..))));
        let cached = run_stream(
            &g,
            &ops,
            StreamStrategy::OverlayCached,
            PathEnumConfig::default(),
            Some(500),
        );
        assert!(cached.cache.hits > 0, "skewed stream must hit");
        assert!(cached.hit_rate() > 0.0);
        let overlay = run_stream(
            &g,
            &ops,
            StreamStrategy::Overlay,
            PathEnumConfig::default(),
            Some(500),
        );
        assert_eq!(overlay.cache.hits, 0);
        assert_eq!(overlay.cache.misses, 0);
    }
}

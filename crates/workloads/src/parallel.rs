//! Parallel query-set evaluation.
//!
//! An online service answers many independent queries at once;
//! per-query indexes (no shared mutable state) make HcPE embarrassingly
//! parallel across queries. This runner fans a query set out over a
//! worker pool using scoped threads — each worker owns a
//! [`pathenum::QueryEngine`] so construction scratch is reused within a
//! worker — and preserves the query order in its output.
//!
//! Since the core engine gained *intra*-query parallelism
//! ([`pathenum::parallel`]), this runner is a thin shell over the
//! request layer: each query becomes a
//! [`QueryRequest`] with the batch time limit as
//! its [`time_budget`](pathenum::QueryRequest::time_budget), and
//! [`run_parallel_intra`] can additionally give every query its own
//! worker pool — the right trade when the batch is small but individual
//! queries are heavy (see the README's "Parallel execution" section).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use pathenum::query::Query;
use pathenum::{CountingSink, PathEnumConfig, QueryEngine, QueryRequest, Termination};
use pathenum_graph::CsrGraph;

use crate::runner::MeasureConfig;

/// Result counts and timings of one parallel run.
#[derive(Debug, Clone)]
pub struct ParallelOutcome {
    /// Per-query result counts, in input order (censored at the limit).
    pub results: Vec<u64>,
    /// Per-query timeout flags, in input order.
    pub timed_out: Vec<bool>,
    /// Wall-clock time of the whole batch.
    pub wall: std::time::Duration,
    /// Number of worker threads used.
    pub workers: usize,
}

impl ParallelOutcome {
    /// Aggregate throughput: total results per wall-clock second.
    pub fn batch_throughput(&self) -> f64 {
        let total: u64 = self.results.iter().sum();
        total as f64 / self.wall.as_secs_f64().max(1e-9)
    }
}

/// Evaluates `queries` with PathEnum on `workers` threads, one thread
/// per in-flight query.
///
/// `workers == 0` selects the available parallelism. Work is distributed
/// by an atomic cursor, so stragglers (heavy queries) do not serialize
/// the batch.
pub fn run_parallel(
    graph: &CsrGraph,
    queries: &[Query],
    config: PathEnumConfig,
    measure: MeasureConfig,
    workers: usize,
) -> ParallelOutcome {
    run_parallel_intra(graph, queries, config, measure, workers, 1)
}

/// Two-level parallel evaluation: `workers` engines answer queries
/// concurrently, and each query additionally runs on `intra_threads`
/// intra-query workers (`QueryRequest::threads`).
///
/// `intra_threads == 1` reduces to [`run_parallel`]. Oversubscription is
/// the caller's responsibility: `workers * intra_threads` should not
/// exceed the machine by much.
pub fn run_parallel_intra(
    graph: &CsrGraph,
    queries: &[Query],
    config: PathEnumConfig,
    measure: MeasureConfig,
    workers: usize,
    intra_threads: usize,
) -> ParallelOutcome {
    let workers = pathenum::parallel::resolve_threads(workers).min(queries.len().max(1));
    let cursor = AtomicUsize::new(0);
    let results: Vec<Mutex<(u64, bool)>> =
        (0..queries.len()).map(|_| Mutex::new((0, false))).collect();

    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut engine = QueryEngine::new(graph, config);
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= queries.len() {
                        break;
                    }
                    let request = QueryRequest::from_query(queries[i])
                        .time_budget(measure.time_limit)
                        .threads(intra_threads);
                    let mut sink = CountingSink::default();
                    let response = engine
                        .execute_into(&request, &mut sink)
                        .expect("parallel batch queries are in range");
                    *results[i].lock().expect("no poisoned result slot") = (
                        response.num_results(),
                        response.termination == Termination::DeadlineExceeded,
                    );
                }
            });
        }
    });
    let wall = start.elapsed();

    let mut counts = Vec::with_capacity(queries.len());
    let mut flags = Vec::with_capacity(queries.len());
    for slot in results {
        let (count, timed_out) = slot.into_inner().expect("no poisoned result slot");
        counts.push(count);
        flags.push(timed_out);
    }
    ParallelOutcome {
        results: counts,
        timed_out: flags,
        wall,
        workers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;
    use crate::querygen::{generate_queries, QueryGenConfig};
    use pathenum::CountingSink;

    #[test]
    fn parallel_counts_match_serial() {
        let g = datasets::gg();
        let queries = generate_queries(&g, QueryGenConfig::paper_default(12, 5, 3));
        let measure = MeasureConfig {
            time_limit: std::time::Duration::from_secs(5),
            response_limit: 1000,
        };
        let outcome = run_parallel(&g, &queries, PathEnumConfig::default(), measure, 4);
        assert_eq!(outcome.results.len(), queries.len());
        for (i, &q) in queries.iter().enumerate() {
            let mut sink = CountingSink::default();
            pathenum::path_enum(&g, q, PathEnumConfig::default(), &mut sink).unwrap();
            assert_eq!(outcome.results[i], sink.count, "query {i}");
            assert!(!outcome.timed_out[i]);
        }
    }

    #[test]
    fn intra_query_threads_do_not_change_counts() {
        let g = datasets::gg();
        let queries = generate_queries(&g, QueryGenConfig::paper_default(6, 5, 9));
        let measure = MeasureConfig {
            time_limit: std::time::Duration::from_secs(5),
            response_limit: 1000,
        };
        let flat = run_parallel(&g, &queries, PathEnumConfig::default(), measure, 2);
        let nested = run_parallel_intra(&g, &queries, PathEnumConfig::default(), measure, 2, 4);
        assert_eq!(flat.results, nested.results);
    }

    #[test]
    fn worker_count_is_clamped() {
        let g = datasets::gg();
        let queries = generate_queries(&g, QueryGenConfig::paper_default(2, 4, 5));
        let outcome = run_parallel(
            &g,
            &queries,
            PathEnumConfig::default(),
            MeasureConfig::default(),
            64,
        );
        assert!(outcome.workers <= 2);
        assert!(outcome.batch_throughput() >= 0.0);
    }

    #[test]
    fn zero_workers_selects_available_parallelism() {
        let g = datasets::gg();
        let queries = generate_queries(&g, QueryGenConfig::paper_default(4, 4, 7));
        let outcome = run_parallel(
            &g,
            &queries,
            PathEnumConfig::default(),
            MeasureConfig::default(),
            0,
        );
        assert!(outcome.workers >= 1);
        assert_eq!(outcome.results.len(), 4);
    }

    #[test]
    fn empty_query_set_is_fine() {
        let g = datasets::gg();
        let outcome = run_parallel(
            &g,
            &[],
            PathEnumConfig::default(),
            MeasureConfig::default(),
            3,
        );
        assert!(outcome.results.is_empty());
    }
}

//! Synthetic proxies for the paper's real-world datasets (Table 2).
//!
//! The originals (SNAP / networkrepository dumps, up to 1.96B edges) are
//! not redistributable in this repository and would not fit a laptop-scale
//! reproduction anyway. Each proxy is generated to match its original's
//! *type* (citation / web / social / recommendation / biological) and
//! degree regime (average degree, heavy-tailed or near-uniform), scaled
//! down roughly three orders of magnitude. DESIGN.md documents why this
//! preserves the phenomena the evaluation measures: the relative behavior
//! of the algorithms is driven by density and degree skew, not by vertex
//! identities.
//!
//! All proxies are deterministic (fixed seeds), so experiment runs are
//! reproducible.

use pathenum_graph::generators::{
    erdos_renyi, power_law, watts_strogatz, PowerLawConfig, SmallWorldConfig,
};
use pathenum_graph::CsrGraph;

/// Graph family of a dataset, mirroring Table 2's "Type" column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// Near-uniform degrees (citation networks): Erdős–Rényi proxy.
    Citation,
    /// Heavy-tailed, low reciprocity (web graphs): power-law proxy.
    Web,
    /// Heavy-tailed, reciprocal (social networks): power-law proxy.
    Social,
    /// Dense interaction graphs (recommendation / biology): dense ER.
    Dense,
    /// Clustered interaction graphs with short diameters (`tr`):
    /// small-world proxy.
    Interaction,
}

/// Static description of one dataset proxy.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSpec {
    /// Short name from Table 2 (`up`, `db`, ..., `tm`).
    pub name: &'static str,
    /// The real-world graph the proxy stands in for.
    pub stands_for: &'static str,
    /// Graph family.
    pub kind: GraphKind,
    /// Proxy vertex count.
    pub vertices: usize,
    /// Average out-degree target (matches Table 2's `d_avg` regime).
    pub avg_degree: usize,
    /// Generator seed.
    pub seed: u64,
}

impl DatasetSpec {
    /// Generates the proxy graph.
    pub fn build(&self) -> CsrGraph {
        match self.kind {
            GraphKind::Citation | GraphKind::Dense => {
                erdos_renyi(self.vertices, self.vertices * self.avg_degree, self.seed)
            }
            GraphKind::Web => power_law(PowerLawConfig::web(
                self.vertices,
                self.avg_degree.max(1),
                self.seed,
            )),
            GraphKind::Social => power_law(PowerLawConfig::social(
                self.vertices,
                // Reciprocity adds ~30% edges; aim the base rate lower.
                (self.avg_degree * 3 / 4).max(1),
                self.seed,
            )),
            GraphKind::Interaction => watts_strogatz(SmallWorldConfig {
                num_vertices: self.vertices,
                neighbors_per_side: (self.avg_degree / 2).max(1),
                rewire_probability: 0.25,
                seed: self.seed,
            }),
        }
    }
}

/// The 15 dataset proxies, in Table 2 order.
pub const DATASETS: &[DatasetSpec] = &[
    DatasetSpec {
        name: "up",
        stands_for: "US Patents (4M/17M, citation)",
        kind: GraphKind::Citation,
        vertices: 8000,
        avg_degree: 9,
        seed: 101,
    },
    DatasetSpec {
        name: "db",
        stands_for: "DBpedia (4M/14M, misc)",
        kind: GraphKind::Web,
        vertices: 8000,
        avg_degree: 6,
        seed: 102,
    },
    DatasetSpec {
        name: "gg",
        stands_for: "Web-google (876K/5M, web)",
        kind: GraphKind::Web,
        vertices: 6000,
        avg_degree: 6,
        seed: 103,
    },
    DatasetSpec {
        name: "st",
        stands_for: "Web-stanford (282K/2.3M, web)",
        kind: GraphKind::Web,
        vertices: 3000,
        avg_degree: 9,
        seed: 104,
    },
    DatasetSpec {
        name: "tw",
        stands_for: "Twitter-social (465K/835K)",
        kind: GraphKind::Social,
        vertices: 5000,
        avg_degree: 3,
        seed: 105,
    },
    DatasetSpec {
        name: "bk",
        stands_for: "Baidu-baike (416K/3M, web)",
        kind: GraphKind::Web,
        vertices: 4000,
        avg_degree: 9,
        seed: 106,
    },
    DatasetSpec {
        name: "tr",
        stands_for: "Wiki-trust (139K/740K, interaction)",
        kind: GraphKind::Interaction,
        vertices: 2200,
        avg_degree: 6,
        seed: 107,
    },
    DatasetSpec {
        name: "ep",
        stands_for: "Soc-Epinions1 (75K/508K, social)",
        kind: GraphKind::Social,
        vertices: 2500,
        avg_degree: 8,
        seed: 108,
    },
    DatasetSpec {
        name: "uk",
        stands_for: "Web-uk-2005 (121K/334K, d=181)",
        kind: GraphKind::Dense,
        vertices: 800,
        avg_degree: 60,
        seed: 109,
    },
    DatasetSpec {
        name: "wt",
        stands_for: "WikiTalk (2M/5M)",
        kind: GraphKind::Social,
        vertices: 6000,
        avg_degree: 3,
        seed: 110,
    },
    DatasetSpec {
        name: "sl",
        stands_for: "Soc-Slashdot0922 (82K/948K)",
        kind: GraphKind::Social,
        vertices: 2000,
        avg_degree: 12,
        seed: 111,
    },
    DatasetSpec {
        name: "lj",
        stands_for: "LiveJournal (5M/69M, social)",
        kind: GraphKind::Social,
        vertices: 4000,
        avg_degree: 16,
        seed: 112,
    },
    DatasetSpec {
        name: "da",
        stands_for: "Rec-dating (169K/17M, d=206)",
        kind: GraphKind::Dense,
        vertices: 700,
        avg_degree: 80,
        seed: 113,
    },
    DatasetSpec {
        name: "ye",
        stands_for: "Bio-grid-yeast (6K/314K, d=105)",
        kind: GraphKind::Dense,
        vertices: 600,
        avg_degree: 55,
        seed: 114,
    },
    DatasetSpec {
        name: "tm",
        stands_for: "Twitter-mpi (52M/1.96B, scalability)",
        kind: GraphKind::Social,
        vertices: 50_000,
        avg_degree: 20,
        seed: 115,
    },
];

/// Looks a dataset up by its Table 2 short name.
pub fn spec(name: &str) -> Option<&'static DatasetSpec> {
    DATASETS.iter().find(|d| d.name == name)
}

/// Builds a dataset proxy by name.
pub fn build(name: &str) -> Option<CsrGraph> {
    spec(name).map(|d| d.build())
}

/// The representative "long query time" graph of Section 7 (`ep`).
pub fn ep() -> CsrGraph {
    build("ep").expect("ep is registered")
}

/// The representative "short query time" graph of Section 7 (`gg`).
pub fn gg() -> CsrGraph {
    build("gg").expect("gg is registered")
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathenum_graph::properties::degree_stats;

    #[test]
    fn registry_has_all_fifteen() {
        assert_eq!(DATASETS.len(), 15);
        let mut names: Vec<&str> = DATASETS.iter().map(|d| d.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 15, "names must be unique");
    }

    #[test]
    fn lookup_by_name() {
        assert!(spec("ep").is_some());
        assert!(spec("nope").is_none());
        assert_eq!(spec("tm").unwrap().vertices, 50_000);
    }

    #[test]
    fn proxies_hit_their_size_targets() {
        for d in DATASETS.iter().filter(|d| d.name != "tm") {
            let g = d.build();
            assert_eq!(g.num_vertices(), d.vertices, "{}", d.name);
            let stats = degree_stats(&g);
            let target = d.avg_degree as f64;
            assert!(
                stats.avg_out_degree > target * 0.5 && stats.avg_out_degree < target * 2.0,
                "{}: avg degree {} vs target {}",
                d.name,
                stats.avg_out_degree,
                target
            );
        }
    }

    #[test]
    fn social_and_web_proxies_are_heavy_tailed() {
        for name in ["ep", "gg"] {
            let g = build(name).unwrap();
            let stats = degree_stats(&g);
            assert!(
                stats.max_in_degree as f64 > 10.0 * stats.avg_out_degree,
                "{name}: max in-degree {} vs avg {}",
                stats.max_in_degree,
                stats.avg_out_degree
            );
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let a = ep();
        let b = ep();
        assert_eq!(a.num_edges(), b.num_edges());
        assert_eq!(
            a.edges().take(50).collect::<Vec<_>>(),
            b.edges().take(50).collect::<Vec<_>>()
        );
    }
}

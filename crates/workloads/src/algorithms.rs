//! A uniform interface over every competing algorithm (Section 7.1's
//! "Comparisons" list plus the weaker framework baselines).

use std::time::Duration;

use pathenum::query::Query;
use pathenum::sink::PathSink;
use pathenum::stats::{Counters, Method};
use pathenum::{path_enum, PathEnumConfig};
use pathenum_baselines::{bc_dfs, bc_join, generic_dfs, t_dfs, yen_ksp};
use pathenum_graph::CsrGraph;

/// One competing algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Algorithm 1 with a static distance bound.
    GenericDfs,
    /// Peng et al.'s barrier-based DFS.
    BcDfs,
    /// Peng et al.'s middle-vertex join.
    BcJoin,
    /// Rizzi et al.'s certificate-based DFS.
    TDfs,
    /// Yen's top-K loopless shortest paths, stopped past `k` (KRE/KPJ).
    YenKsp,
    /// PathEnum forced to depth-first search on the index.
    IdxDfs,
    /// PathEnum forced to the index join.
    IdxJoin,
    /// Full PathEnum with the cost-based optimizer.
    PathEnum,
}

impl Algorithm {
    /// The five algorithms of Table 3, in its column order.
    pub fn table3() -> [Algorithm; 5] {
        [
            Algorithm::BcDfs,
            Algorithm::BcJoin,
            Algorithm::IdxDfs,
            Algorithm::IdxJoin,
            Algorithm::PathEnum,
        ]
    }

    /// Every implemented algorithm.
    pub fn all() -> [Algorithm; 8] {
        [
            Algorithm::GenericDfs,
            Algorithm::BcDfs,
            Algorithm::BcJoin,
            Algorithm::TDfs,
            Algorithm::YenKsp,
            Algorithm::IdxDfs,
            Algorithm::IdxJoin,
            Algorithm::PathEnum,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::GenericDfs => "GEN-DFS",
            Algorithm::BcDfs => "BC-DFS",
            Algorithm::BcJoin => "BC-JOIN",
            Algorithm::TDfs => "T-DFS",
            Algorithm::YenKsp => "YEN-KSP",
            Algorithm::IdxDfs => "IDX-DFS",
            Algorithm::IdxJoin => "IDX-JOIN",
            Algorithm::PathEnum => "PathEnum",
        }
    }

    /// Whether this algorithm streams results (short response time) as
    /// opposed to materializing sub-query results first. The paper only
    /// reports response time for the streaming algorithms.
    pub fn is_streaming(&self) -> bool {
        !matches!(self, Algorithm::BcJoin | Algorithm::IdxJoin)
    }

    /// Runs the algorithm on one query, streaming into `sink`.
    ///
    /// The measurement harness generates queries from the graph itself,
    /// so the PathEnum variants' validation cannot fail here; an
    /// out-of-range query is a harness bug and panics with the
    /// validation error.
    pub fn run(&self, graph: &CsrGraph, query: Query, sink: &mut dyn PathSink) -> AlgoReport {
        let validated = |result: Result<pathenum::RunReport, pathenum::PathEnumError>| {
            from_pathenum(result.expect("harness queries are in range for the graph"))
        };
        match self {
            Algorithm::GenericDfs => from_baseline(generic_dfs(graph, query, sink)),
            Algorithm::BcDfs => from_baseline(bc_dfs(graph, query, sink)),
            Algorithm::BcJoin => from_baseline(bc_join(graph, query, sink)),
            Algorithm::TDfs => from_baseline(t_dfs(graph, query, sink)),
            Algorithm::YenKsp => from_baseline(yen_ksp(graph, query, sink)),
            Algorithm::IdxDfs => validated(path_enum(
                graph,
                query,
                PathEnumConfig {
                    force: Some(Method::IdxDfs),
                    ..Default::default()
                },
                sink,
            )),
            Algorithm::IdxJoin => validated(path_enum(
                graph,
                query,
                PathEnumConfig {
                    force: Some(Method::IdxJoin),
                    ..Default::default()
                },
                sink,
            )),
            Algorithm::PathEnum => {
                validated(path_enum(graph, query, PathEnumConfig::default(), sink))
            }
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Algorithm {
    type Err = String;

    /// Parses a CLI algorithm name (case-insensitive, `_` accepted for
    /// `-`). The two PathEnum forced variants go through
    /// [`Method`]'s `FromStr` impl, so every spelling `Method` accepts
    /// (`idx-dfs`, `dfs`, `IDX-JOIN`, ...) selects the matching forced
    /// algorithm here.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Ok(method) = s.parse::<Method>() {
            return Ok(match method {
                Method::IdxDfs => Algorithm::IdxDfs,
                Method::IdxJoin => Algorithm::IdxJoin,
            });
        }
        match s.to_ascii_lowercase().replace('_', "-").as_str() {
            "pathenum" => Ok(Algorithm::PathEnum),
            "gen-dfs" | "generic-dfs" => Ok(Algorithm::GenericDfs),
            "bc-dfs" => Ok(Algorithm::BcDfs),
            "bc-join" => Ok(Algorithm::BcJoin),
            "t-dfs" => Ok(Algorithm::TDfs),
            "yen" | "yen-ksp" => Ok(Algorithm::YenKsp),
            other => Err(format!("unknown algorithm: {other}")),
        }
    }
}

/// Unified per-run report across baselines and PathEnum variants.
#[derive(Debug, Clone)]
pub struct AlgoReport {
    /// Preprocessing: distance BFS for baselines, index build for ours.
    pub preprocessing: Duration,
    /// Join-order optimization time (zero for baselines).
    pub optimization: Duration,
    /// Enumeration time.
    pub enumeration: Duration,
    /// Shared counters.
    pub counters: Counters,
    /// Method PathEnum selected, if the run went through the optimizer.
    pub method: Option<Method>,
    /// Index size in edges (PathEnum variants only).
    pub index_edges: Option<usize>,
    /// Index footprint in bytes (PathEnum variants only).
    pub index_bytes: Option<usize>,
}

impl AlgoReport {
    /// Total query time.
    pub fn total(&self) -> Duration {
        self.preprocessing + self.optimization + self.enumeration
    }
}

fn from_baseline(report: pathenum_baselines::BaselineReport) -> AlgoReport {
    AlgoReport {
        preprocessing: report.preprocessing,
        optimization: Duration::ZERO,
        enumeration: report.enumeration,
        counters: report.counters,
        method: None,
        index_edges: None,
        index_bytes: None,
    }
}

fn from_pathenum(report: pathenum::RunReport) -> AlgoReport {
    AlgoReport {
        preprocessing: report.timings.index_build + report.timings.preliminary_estimation,
        optimization: report.timings.optimization,
        enumeration: report.timings.enumeration,
        counters: report.counters,
        method: Some(report.method),
        index_edges: Some(report.index_edges),
        index_bytes: Some(report.index_bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathenum::sink::CollectingSink;
    use pathenum_graph::generators::erdos_renyi;

    #[test]
    fn all_algorithms_agree_on_random_graphs() {
        for seed in 0..3u64 {
            let g = erdos_renyi(40, 250, seed);
            let q = Query::new(0, 1, 5).unwrap();
            let mut reference: Option<Vec<Vec<u32>>> = None;
            for algo in Algorithm::all() {
                let mut sink = CollectingSink::default();
                algo.run(&g, q, &mut sink);
                let paths = sink.sorted_paths();
                match &reference {
                    None => reference = Some(paths),
                    Some(expected) => {
                        assert_eq!(&paths, expected, "algorithm {algo} disagrees (seed {seed})")
                    }
                }
            }
        }
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Algorithm::all().iter().map(|a| a.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn reports_carry_index_stats_for_index_variants() {
        let g = erdos_renyi(30, 150, 1);
        let q = Query::new(0, 1, 4).unwrap();
        let mut sink = CollectingSink::default();
        let report = Algorithm::IdxDfs.run(&g, q, &mut sink);
        assert!(report.index_edges.is_some());
        assert!(report.index_bytes.is_some());
        let mut sink = CollectingSink::default();
        let report = Algorithm::BcDfs.run(&g, q, &mut sink);
        assert!(report.index_edges.is_none());
    }

    #[test]
    fn streaming_classification() {
        assert!(Algorithm::BcDfs.is_streaming());
        assert!(Algorithm::IdxDfs.is_streaming());
        assert!(!Algorithm::BcJoin.is_streaming());
        assert!(!Algorithm::IdxJoin.is_streaming());
    }
}

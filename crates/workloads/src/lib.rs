//! Workload layer for the PathEnum reproduction.
//!
//! * [`datasets`] — synthetic, laptop-scale proxies for the paper's 15
//!   real-world graphs (Table 2), matched on graph type and degree regime.
//! * [`querygen`] — the paper's query generator: split vertices into the
//!   top-10%-by-degree set `V'` and the rest `V''`, sample `(s, t)` pairs
//!   per setting with `distance(s, t) <= 3` guaranteed.
//! * [`algorithms`] — one uniform interface over every competitor
//!   (generic DFS, BC-DFS, BC-JOIN, T-DFS, IDX-DFS, IDX-JOIN, PathEnum).
//! * [`runner`] — per-query measurement with time limits (query time,
//!   throughput, response time), plus the aggregation helpers the tables
//!   and figures need (means, percentiles, CDFs, log-log regression).
//! * [`streaming`] — update→query streams over a dynamic graph, replayed
//!   under snapshot-per-update vs overlay vs overlay+retained-cache
//!   serving strategies.
//! * [`serving`] — open/closed-loop multi-client load harnesses over the
//!   concurrent [`PathEnumService`](pathenum::PathEnumService), plus the
//!   open-loop overload driver over the admission-controlled
//!   [`CatalogService`](pathenum::CatalogService).

pub mod algorithms;
pub mod datasets;
pub mod parallel;
pub mod querygen;
pub mod runner;
pub mod serving;
pub mod streaming;

pub use algorithms::{AlgoReport, Algorithm};
pub use parallel::{run_parallel, run_parallel_intra, ParallelOutcome};
pub use querygen::{generate_queries, skewed_stream, QueryGenConfig, QuerySetting};
pub use runner::{run_query, MeasureConfig, QueryMeasurement};
pub use serving::{
    run_closed_loop, run_open_loop, run_overload, OverloadReport, ServingBounds, ServingSummary,
};
pub use streaming::{
    generate_stream, run_stream, StreamConfig, StreamOp, StreamRunSummary, StreamStrategy,
};

//! E-commerce merchant fraud detection (motivating application 2).
//!
//! Fake-transaction rings show up as short cycles in the payment graph.
//! Following the paper (and Qiu et al.'s real-time cycle detection), each
//! newly arriving edge `e(v, v')` triggers the query `q(v', v, k - 1)`:
//! every returned path, closed by the new edge, is a hop-constrained
//! cycle through it.
//!
//! ```text
//! cargo run --release --example fraud_cycles
//! ```

use pathenum_repro::graph::DynamicGraph;
use pathenum_repro::prelude::*;
use pathenum_repro::workloads::datasets;

fn main() {
    // Payment network proxy (social-graph shape) and a stream of new
    // transactions: the last 200 edges arrive one at a time.
    let full = datasets::build("tr").expect("registered dataset");
    let all_edges: Vec<(u32, u32)> = full.edges().collect();
    let (base_edges, stream) = all_edges.split_at(all_edges.len() - 200);

    let mut builder = GraphBuilder::new(full.num_vertices());
    builder
        .add_edges(base_edges.iter().copied())
        .expect("base edges are valid");
    let mut network = DynamicGraph::new(builder.finish());

    let hop_limit = 6u32; // the paper's fraud example uses k = 6 cycles
    let mut alerts = 0usize;
    let mut total_cycles = 0u64;
    let mut worst: Option<(u32, u32, u64)> = None;

    for &(payer, payee) in stream {
        // Query the graph as of *before* the insertion, then insert.
        let snapshot = network.snapshot();
        network.insert_edge(payer, payee);

        // Cycles through (payer -> payee) = paths payee -> payer of at
        // most k - 1 hops. The request layer rejects self-loop-ish
        // updates (payer == payee) as EqualEndpoints instead of needing
        // a pre-check.
        let mut engine = QueryEngine::new(&snapshot, PathEnumConfig::default());
        let request = QueryRequest::paths(payee, payer).max_hops(hop_limit - 1);
        let Ok(response) = engine.execute(&request) else {
            continue; // self-loop-ish update, not a valid query
        };
        let cycles = response.num_results();
        if cycles > 0 {
            alerts += 1;
            total_cycles += cycles;
            if worst.is_none_or(|(_, _, c)| cycles > c) {
                worst = Some((payer, payee, cycles));
            }
        }
    }

    println!(
        "replayed {} transaction insertions (k = {hop_limit})",
        stream.len()
    );
    println!("alerts raised (new edge closes >= 1 cycle): {alerts}");
    println!("total cycles detected: {total_cycles}");
    if let Some((payer, payee, count)) = worst {
        println!("hottest edge: {payer} -> {payee} closed {count} cycles");
    }
}

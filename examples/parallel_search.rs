//! Intra-query parallel enumeration: one heavy query fanned out over a
//! scoped worker pool via `QueryRequest::threads(n)`.
//!
//! ```text
//! cargo run --release --example parallel_search
//! ```
//!
//! Demonstrates the three guarantees of the `pathenum::parallel` module:
//! same result set as the sequential engine, a merged order that does
//! not depend on the worker count, and exact limit enforcement under
//! concurrent emission.

use std::time::Instant;

use pathenum_repro::graph::generators::{power_law, PowerLawConfig};
use pathenum_repro::prelude::*;

fn main() {
    // A social-network-like graph: heavy-tailed degrees, ~50k edges.
    let graph = power_law(PowerLawConfig::social(8_000, 5, 7));
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );
    let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
    let (s, t, k) = (0u32, 3u32, 6u32);

    // Sequential baseline.
    let start = Instant::now();
    let sequential = engine
        .execute(&QueryRequest::paths(s, t).max_hops(k).collect_paths(true))
        .expect("valid request");
    let sequential_wall = start.elapsed();
    println!(
        "sequential: {} paths in {:?} ({})",
        sequential.num_results(),
        sequential_wall,
        sequential.report.method
    );

    // The same request on worker pools of different sizes: identical
    // path sets, identical merged order.
    let mut reference_order: Option<Vec<Vec<VertexId>>> = None;
    for threads in [2usize, 4, 8] {
        let start = Instant::now();
        let parallel = engine
            .execute(
                &QueryRequest::paths(s, t)
                    .max_hops(k)
                    .threads(threads)
                    .collect_paths(true),
            )
            .expect("valid request");
        let wall = start.elapsed();
        assert_eq!(parallel.num_results(), sequential.num_results());
        match &reference_order {
            None => reference_order = Some(parallel.paths),
            Some(reference) => assert_eq!(
                &parallel.paths, reference,
                "merged order must not depend on the worker count"
            ),
        }
        println!(
            "threads({threads}): same {} paths in {:?} (speedup {:.2}x)",
            sequential.num_results(),
            wall,
            sequential_wall.as_secs_f64() / wall.as_secs_f64().max(1e-9),
        );
    }

    // A shared limit is enforced by atomic slot reservation: the pool as
    // a whole never over-delivers.
    let limited = engine
        .execute(
            &QueryRequest::paths(s, t)
                .max_hops(k)
                .threads(4)
                .limit(100)
                .collect_paths(true),
        )
        .expect("valid request");
    assert_eq!(limited.termination, Termination::LimitReached);
    assert_eq!(limited.paths.len(), 100);
    println!(
        "threads(4) + limit(100): delivered exactly {} paths ({:?})",
        limited.num_results(),
        limited.termination
    );
}

//! `EXPLAIN` for hop-constrained path queries.
//!
//! The engine's planner/executor split makes every query's strategy a
//! first-class [`PhysicalPlan`] value: which method the cost model picks
//! (IDX-DFS vs IDX-JOIN), at which cut the bushy join would meet, what
//! the estimators predicted, and how big the per-query index is — all
//! *without enumerating a single path*. This example explains a few
//! queries at different hop constraints, shows the rendered plan, then
//! executes them to demonstrate (a) the execution matches the
//! explanation and (b) explaining warmed the plan cache.
//!
//! ```text
//! cargo run --release --example explain_plan
//! ```

use pathenum_repro::prelude::*;
use pathenum_repro::workloads::datasets;

fn main() {
    let graph = datasets::build("ep").expect("registered dataset");
    println!(
        "graph: {} vertices, {} edges (version {})\n",
        graph.num_vertices(),
        graph.num_edges(),
        graph.version()
    );

    let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
    let s = 0u32;
    let t = (graph.num_vertices() as u32) / 2;

    for k in [3u32, 4, 5, 6] {
        // tau(0) forces the full estimator so the EXPLAIN always shows
        // the modeled T_DFS / T_JOIN costs.
        let request = QueryRequest::paths(s, t).max_hops(k).tau(0);
        match engine.explain(&request) {
            Ok(plan) => {
                println!("{plan}\n");
                // The execution interprets exactly the explained plan;
                // it also hits the cache the explanation just warmed.
                let response = engine
                    .execute(&request.limit(10_000))
                    .expect("explained request is valid");
                assert_eq!(response.report.method, plan.method);
                assert_eq!(response.report.cut_position, plan.cut);
                println!(
                    "  -> executed via {}: {} results, cache {}, enumeration {:?}\n",
                    response.report.method,
                    response.num_results(),
                    response.report.cache,
                    response.report.timings.enumeration,
                );
            }
            Err(e) => println!("q({s}, {t}, {k}) is invalid: {e}\n"),
        }
    }

    let stats = engine.cache_stats();
    println!(
        "plan cache after the session: {} entries, {} hits / {} lookups",
        engine.plan_cache().len(),
        stats.hits,
        stats.hits + stats.misses,
    );
}

//! Knowledge-graph completion with action-sequence constraints
//! (motivating application 3, Appendix E's Algorithm 8).
//!
//! Paths between two entities are features for relation prediction, but
//! only paths whose edge-label sequence matches a schema — here the
//! paper's example "write -> mention" followed by any number of
//! "mention" hops — should be collected.
//!
//! ```text
//! cargo run --release --example knowledge_graph
//! ```

use pathenum_repro::prelude::*;
use pathenum_repro::workloads::datasets;
use pathenum_repro::workloads::{generate_queries, QueryGenConfig};

const WRITE: u32 = 0;
const MENTION: u32 = 1;
const CITES: u32 = 2;

/// Deterministic pseudo-labeling of edges with three relation types.
fn label(from: u32, to: u32) -> u32 {
    let mix = (u64::from(from) << 32 | u64::from(to)).wrapping_mul(0xd134_2543_de82_ef95);
    ((mix >> 61) % 3) as u32
}

fn label_name(l: u32) -> &'static str {
    match l {
        WRITE => "write",
        MENTION => "mention",
        CITES => "cites",
        _ => unreachable!("labels are 0..3"),
    }
}

fn main() {
    let kg = datasets::build("db").expect("registered dataset");
    let hop_limit = 4u32;

    // Automaton for the pattern: write mention+
    // state 0 --write--> state 1 --mention--> state 2 (accepting,
    // loops on mention).
    let mut schema = Automaton::new(3, 3, 0).expect("valid shape");
    schema.add_transition(0, WRITE, 1).expect("in range");
    schema.add_transition(1, MENTION, 2).expect("in range");
    schema.add_transition(2, MENTION, 2).expect("in range");
    schema.set_accepting(2).expect("in range");

    let queries = generate_queries(&kg, QueryGenConfig::paper_default(8, hop_limit, 11));
    let mut engine = QueryEngine::new(&kg, PathEnumConfig::default());
    let mut total_matching = 0usize;
    let mut pairs_with_matches = 0usize;
    for query in &queries {
        // The schema automaton rides on the request; lazily pull the
        // matching paths instead of materializing them all.
        let request = QueryRequest::from_query(*query).automaton(schema.clone(), label);
        let matching: Vec<_> = engine
            .stream(&request)
            .expect("generated queries are in range")
            .collect();
        if matching.is_empty() {
            continue;
        }
        pairs_with_matches += 1;
        total_matching += matching.len();
        println!(
            "entities {} -> {}: {} path(s) matching write->mention+",
            query.s,
            query.t,
            matching.len()
        );
        if let Some(path) = matching.first() {
            let labels: Vec<&str> = path
                .windows(2)
                .map(|w| label_name(label(w[0], w[1])))
                .collect();
            println!("  e.g. {:?} via [{}]", path, labels.join(", "));
        }
    }
    println!(
        "{} of {} entity pairs have schema-conforming paths ({} paths total)",
        pairs_with_matches,
        queries.len(),
        total_matching
    );
}

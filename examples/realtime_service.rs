//! A real-time HcPE query service in miniature.
//!
//! Simulates the serving pattern the paper's title targets: a stream of
//! path queries against one in-memory graph under a latency budget.
//! Demonstrates the production-oriented layers built around the core
//! algorithm: the [`QueryRequest`] builder expressing "at most 1000
//! paths within 20 ms" directly, the scratch-reusing [`QueryEngine`],
//! the PLL-backed global existence filter (paper §7.5), and the
//! parallel batch runner.
//!
//! ```text
//! cargo run --release --example realtime_service
//! ```

use std::time::{Duration, Instant};

use pathenum_repro::core::global::GlobalIndexedGraph;
use pathenum_repro::prelude::*;
use pathenum_repro::workloads::runner::percentile_ms;
use pathenum_repro::workloads::{datasets, generate_queries, parallel, QueryGenConfig};

fn main() {
    let graph = datasets::build("ep").expect("registered dataset");
    println!(
        "serving graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // A stream of queries: mostly well-formed (admissible endpoint
    // pairs), mixed with random pairs that often have no answer.
    let mut stream = generate_queries(&graph, QueryGenConfig::paper_default(150, 4, 99));
    let n = graph.num_vertices() as u32;
    for i in 0..50u32 {
        if let Ok(q) = Query::new((i * 37) % n, (i * 101 + 13) % n, 4) {
            stream.push(q);
        }
    }

    // Offline preprocessing: the global distance oracle.
    let offline_start = Instant::now();
    let service = GlobalIndexedGraph::new(graph.clone());
    println!(
        "offline PLL oracle built in {:.2?} ({:.1} labels/vertex)",
        offline_start.elapsed(),
        service.oracle().average_label_size()
    );

    // Serial serving loop with an engine (reused scratch) + the filter.
    // The per-query SLA — respond with the first 1000 paths, never
    // spend more than 20 ms — is the request itself. The plan cache is
    // sized to the stream's working set: a cache smaller than the set of
    // distinct recurring queries thrashes under a sequential replay (LRU
    // evicts each entry just before its repeat arrives).
    let mut engine = QueryEngine::with_cache(
        &graph,
        PathEnumConfig::default(),
        PlanCache::new(stream.len().next_power_of_two()),
    );
    let mut latencies: Vec<Duration> = Vec::with_capacity(stream.len());
    let mut filtered = 0u64;
    let mut results = 0u64;
    let mut capped = 0u64;
    let mut deadline_hit = 0u64;
    for &query in &stream {
        let start = Instant::now();
        if !service.may_have_results(query) {
            filtered += 1;
            latencies.push(start.elapsed());
            continue;
        }
        let request = QueryRequest::from_query(query)
            .limit(1000)
            .time_budget(Duration::from_millis(20));
        let response = engine
            .execute(&request)
            .expect("generated queries are in range");
        results += response.num_results();
        match response.termination {
            Termination::LimitReached => capped += 1,
            Termination::DeadlineExceeded => deadline_hit += 1,
            _ => {}
        }
        latencies.push(start.elapsed());
    }
    println!(
        "\nserial service: {} queries ({} filtered as provably empty)",
        stream.len(),
        filtered
    );
    println!(
        "  paths returned: {results} ({capped} hit the 1000-path cap, {deadline_hit} the 20 ms budget)"
    );
    println!(
        "  latency p50 = {:.3} ms, p99 = {:.3} ms, p99.9 = {:.3} ms",
        percentile_ms(&latencies, 50.0),
        percentile_ms(&latencies, 99.0),
        percentile_ms(&latencies, 99.9),
    );

    // Real traffic repeats: replay the same stream against the now-warm
    // plan cache. Every repeated (s, t, k) skips BFS + index build.
    let mut warm_latencies: Vec<Duration> = Vec::with_capacity(stream.len());
    for &query in &stream {
        let start = Instant::now();
        if service.may_have_results(query) {
            let request = QueryRequest::from_query(query)
                .limit(1000)
                .time_budget(Duration::from_millis(20));
            engine.execute(&request).expect("same queries as pass one");
        }
        warm_latencies.push(start.elapsed());
    }
    let stats = engine.cache_stats();
    println!(
        "\nwarm replay: latency p50 = {:.3} ms, p99 = {:.3} ms \
         (plan cache: {} hits / {} lookups, {:.0}% hit rate, {} entries)",
        percentile_ms(&warm_latencies, 50.0),
        percentile_ms(&warm_latencies, 99.0),
        stats.hits,
        stats.hits + stats.misses,
        100.0 * stats.hit_rate(),
        engine.plan_cache().len(),
    );

    // Pull-based streaming: page through one query's results lazily —
    // the enumeration advances only as far as the consumer reads.
    if let Some(&query) = stream.first() {
        let request = QueryRequest::from_query(query);
        let mut pages = 0usize;
        let mut rows = 0usize;
        let mut stream = engine.stream(&request).expect("in range");
        loop {
            let page: Vec<_> = stream.by_ref().take(100).collect();
            if page.is_empty() {
                break;
            }
            pages += 1;
            rows += page.len();
            if pages >= 3 {
                break; // client paged away; the rest is never enumerated
            }
        }
        println!(
            "\npull-based stream of q({}, {}, {}): {} rows over {} pages, termination {:?}",
            query.s,
            query.t,
            query.k,
            rows,
            pages,
            stream.termination()
        );
    }

    // Parallel batch mode: the same stream fanned over a worker pool.
    let measure = MeasureConfig {
        time_limit: Duration::from_millis(250),
        response_limit: 1000,
    };
    let outcome = parallel::run_parallel(&graph, &stream, PathEnumConfig::default(), measure, 0);
    println!(
        "\nparallel batch: {} workers, wall {:.2?}, {:.2e} results/s aggregate",
        outcome.workers,
        outcome.wall,
        outcome.batch_throughput()
    );
}

//! A real-time HcPE query service in miniature — now actually
//! concurrent.
//!
//! Simulates the serving pattern the paper's title targets: a stream of
//! path queries against one in-memory graph under a latency budget,
//! answered by many threads at once. Demonstrates the production
//! layers built around the core algorithm:
//!
//! * [`PathEnumService`] — one shared graph (`Arc<CsrGraph>`), one
//!   shared sharded plan cache, a fixed worker pool; `&self` execution
//!   from any thread;
//! * the [`QueryRequest`] builder expressing "at most 1000 paths within
//!   a time budget" directly;
//! * the PLL-backed global existence filter (paper §7.5) in front of
//!   the service;
//! * closed-loop and open-loop multi-client replays
//!   (`workloads::serving`), and fire-and-forget `submit` tickets.
//!
//! ```text
//! cargo run --release --example realtime_service
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use pathenum_repro::core::global::GlobalIndexedGraph;
use pathenum_repro::prelude::*;
use pathenum_repro::workloads::runner::percentile_ms;
use pathenum_repro::workloads::serving::{run_closed_loop, run_open_loop, ServingBounds};
use pathenum_repro::workloads::{datasets, generate_queries, QueryGenConfig};

fn main() {
    let graph = Arc::new(datasets::build("ep").expect("registered dataset"));
    println!(
        "serving graph: {} vertices, {} edges; cores available: {}",
        graph.num_vertices(),
        graph.num_edges(),
        std::thread::available_parallelism().map_or(1, |p| p.get()),
    );

    // A stream of queries: mostly well-formed (admissible endpoint
    // pairs), mixed with random pairs that often have no answer.
    let mut stream = generate_queries(&graph, QueryGenConfig::paper_default(150, 4, 99));
    let n = graph.num_vertices() as u32;
    for i in 0..50u32 {
        if let Ok(q) = Query::new((i * 37) % n, (i * 101 + 13) % n, 4) {
            stream.push(q);
        }
    }

    // Offline preprocessing: the global distance oracle.
    let offline_start = Instant::now();
    let oracle = GlobalIndexedGraph::new((*graph).clone());
    println!(
        "offline PLL oracle built in {:.2?} ({:.1} labels/vertex)",
        offline_start.elapsed(),
        oracle.oracle().average_label_size()
    );
    let admissible: Vec<Query> = stream
        .iter()
        .copied()
        .filter(|&q| oracle.may_have_results(q))
        .collect();
    println!(
        "PLL filter: {} of {} queries may have results (the rest answered for free)",
        admissible.len(),
        stream.len()
    );

    // The serving layer: one shared graph, one shared plan cache sized
    // to the stream's working set, a fixed worker pool. The per-query
    // SLA — respond with the first 1000 paths within a time budget — is
    // the request itself. The budget is generous relative to the p99
    // (hundreds of times the typical query) so the replay-equality
    // assertions below stay deterministic even on a slow, loaded CI
    // container; tighten it to taste in a real deployment.
    let service = PathEnumService::with_config(
        Arc::clone(&graph),
        PathEnumConfig::default(),
        ServiceConfig {
            workers: 0, // one per core
            cache_capacity: admissible.len().next_power_of_two(),
            cache_shards: 8,
            ..ServiceConfig::default()
        },
    );
    let bounds = ServingBounds {
        limit: Some(1000),
        time_budget: Some(Duration::from_millis(250)),
        collect: false,
    };
    println!(
        "service: {} workers, cache capacity {} over 8 shards",
        service.workers(),
        admissible.len().next_power_of_two()
    );

    // Closed-loop replay: the pool keeps `workers` requests in flight.
    let cold = run_closed_loop(&service, &admissible, bounds);
    println!(
        "\nclosed loop (cold): {} queries in {:.2?} ({:.0} req/s), {} paths",
        admissible.len(),
        cold.wall,
        cold.throughput(),
        cold.total_results(),
    );
    println!(
        "  latency p50 = {:.3} ms, p99 = {:.3} ms, p99.9 = {:.3} ms",
        percentile_ms(&cold.latencies, 50.0),
        percentile_ms(&cold.latencies, 99.0),
        percentile_ms(&cold.latencies, 99.9),
    );

    // Real traffic repeats: replay the same stream against the now-warm
    // shared cache. Every repeated (s, t, k) skips BFS + index build on
    // whichever worker serves it — the cache is shared, so it does not
    // matter which worker warmed the entry.
    let warm = run_closed_loop(&service, &admissible, bounds);
    let stats = service.cache_stats();
    println!(
        "\nclosed loop (warm): latency p50 = {:.3} ms, p99 = {:.3} ms",
        percentile_ms(&warm.latencies, 50.0),
        percentile_ms(&warm.latencies, 99.0),
    );
    println!(
        "  shared cache: {} hits / {} lookups ({:.0}% hit rate, {} entries, {} shards)",
        stats.hits,
        stats.lookups,
        100.0 * stats.hit_rate(),
        service.cache_len(),
        8,
    );
    assert_eq!(
        warm.results, cold.results,
        "warm replay must reproduce the cold results"
    );
    assert!(stats.hits > 0, "the warm replay must hit the shared cache");

    // Open-loop replay: arrivals on a fixed schedule, latency measured
    // from intended arrival to completion — queueing delay included.
    let interval = Duration::from_micros(500);
    let open = run_open_loop(&service, &admissible, interval, bounds);
    println!(
        "\nopen loop ({}us arrival interval): sojourn p50 = {:.3} ms, p99 = {:.3} ms",
        interval.as_micros(),
        percentile_ms(&open.latencies, 50.0),
        percentile_ms(&open.latencies, 99.0),
    );
    assert_eq!(
        open.results, cold.results,
        "open loop reproduces the results"
    );

    // Fire-and-forget: submit a query, do other work, collect later.
    if let Some(&query) = admissible.first() {
        let ticket = service.submit(
            QueryRequest::from_query(query)
                .limit(1000)
                .collect_paths(true),
        );
        let outcome = ticket.wait_outcome();
        let latency = outcome.latency();
        let response = outcome.response.expect("query is valid");
        println!(
            "\nsubmit/ticket: q({}, {}, {}) -> {} paths in {:.3} ms ({})",
            query.s,
            query.t,
            query.k,
            response.num_results(),
            latency.as_secs_f64() * 1e3,
            response.report.cache,
        );
    }

    // The sequential engine is still there for single-threaded callers —
    // and the service must agree with it path-for-path.
    let Some(&subject) = admissible.get(admissible.len() / 2) else {
        println!("\n(no admissible queries in this stream; skipping the engine spot check)");
        return;
    };
    let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
    let request = || {
        QueryRequest::from_query(subject)
            .limit(1000)
            .collect_paths(true)
    };
    let from_engine = engine.execute(&request()).expect("valid");
    let from_service = service.execute(&request()).expect("valid");
    assert_eq!(from_engine.paths, from_service.paths);
    println!(
        "\nspot check vs sequential engine: q({}, {}, {}) agrees path-for-path \
         ({} paths; engine {}, service {})",
        subject.s,
        subject.t,
        subject.k,
        from_engine.paths.len(),
        from_engine.report.cache,
        from_service.report.cache,
    );
}

//! Quickstart: enumerate hop-constrained s-t paths on a small graph.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pathenum_repro::prelude::*;

fn main() {
    // The running example of the paper (Figure 1a): s = 0, t = 1,
    // v0..v7 = 2..9.
    let mut builder = GraphBuilder::new(10);
    let (s, t) = (0u32, 1u32);
    let v = |i: u32| i + 2;
    builder
        .add_edges([
            (s, v(0)),
            (s, v(1)),
            (s, v(3)),
            (v(0), v(1)),
            (v(0), v(6)),
            (v(0), t),
            (v(1), v(2)),
            (v(1), v(3)),
            (v(2), v(0)),
            (v(2), t),
            (v(3), v(4)),
            (v(4), v(5)),
            (v(5), v(2)),
            (v(5), t),
            (v(6), v(0)),
            (v(7), s),
        ])
        .expect("static edge list is valid");
    let graph = builder.finish();

    // q(s, t, 4): all simple paths from s to t with at most 4 edges.
    let query = Query::new(s, t, 4).expect("valid query");
    let mut sink = CollectingSink::default();
    let report = path_enum(&graph, query, PathEnumConfig::default(), &mut sink);

    println!("query q(s={}, t={}, k={})", query.s, query.t, query.k);
    println!("method selected: {}", report.method);
    println!(
        "index: {} edges, {} bytes; preliminary estimate: {} partial results",
        report.index_edges, report.index_bytes, report.preliminary_estimate
    );
    println!("found {} paths:", sink.paths.len());
    for path in sink.sorted_paths() {
        let pretty: Vec<String> = path
            .iter()
            .map(|&u| match u {
                0 => "s".to_string(),
                1 => "t".to_string(),
                other => format!("v{}", other - 2),
            })
            .collect();
        println!("  {}", pretty.join(" -> "));
    }
    println!(
        "timing: index {:?}, enumeration {:?}",
        report.timings.index_build, report.timings.enumeration
    );
}

//! Quickstart: enumerate hop-constrained s-t paths on a small graph
//! through the `QueryRequest` service API.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use pathenum_repro::prelude::*;

fn main() {
    // The running example of the paper (Figure 1a): s = 0, t = 1,
    // v0..v7 = 2..9.
    let mut builder = GraphBuilder::new(10);
    let (s, t) = (0u32, 1u32);
    let v = |i: u32| i + 2;
    builder
        .add_edges([
            (s, v(0)),
            (s, v(1)),
            (s, v(3)),
            (v(0), v(1)),
            (v(0), v(6)),
            (v(0), t),
            (v(1), v(2)),
            (v(1), v(3)),
            (v(2), v(0)),
            (v(2), t),
            (v(3), v(4)),
            (v(4), v(5)),
            (v(5), v(2)),
            (v(5), t),
            (v(6), v(0)),
            (v(7), s),
        ])
        .expect("static edge list is valid");
    let graph = builder.finish();

    // q(s, t, 4): all simple paths from s to t with at most 4 edges,
    // phrased as a service request.
    let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
    let request = QueryRequest::paths(s, t).max_hops(4).collect_paths(true);
    let response = engine
        .execute(&request)
        .expect("endpoints are in the graph");
    let report = &response.report;

    println!("request: paths({s}, {t}).max_hops(4)");
    println!(
        "method selected: {}; termination: {:?}",
        report.method, response.termination
    );
    println!(
        "index: {} edges, {} bytes; preliminary estimate: {} partial results",
        report.index_edges, report.index_bytes, report.preliminary_estimate
    );
    println!("found {} paths:", response.paths.len());
    let mut paths = response.paths;
    paths.sort_unstable();
    for path in paths {
        let pretty: Vec<String> = path
            .iter()
            .map(|&u| match u {
                0 => "s".to_string(),
                1 => "t".to_string(),
                other => format!("v{}", other - 2),
            })
            .collect();
        println!("  {}", pretty.join(" -> "));
    }
    println!(
        "timing: index {:?}, enumeration {:?}",
        report.timings.index_build, report.timings.enumeration
    );
}

//! Snapshot-free fraud detection on a live transaction stream.
//!
//! The successor to `fraud_cycles`: the same per-insertion cycle query
//! `q(v', v, k - 1)`, but served by [`DynamicEngine`] directly on the
//! mutating graph's overlay — no `O(n + m)` snapshot per transaction —
//! with the plan cache carried across insertions. Entries whose recorded
//! footprint the new edge provably cannot touch survive the mutation
//! (surgical retention), so the recurring monitoring queries that ride
//! along with the stream stay warm.
//!
//! ```text
//! cargo run --release --example fraud_stream
//! ```

use pathenum_repro::core::DynamicEngine;
use pathenum_repro::graph::DynamicGraph;
use pathenum_repro::prelude::*;
use pathenum_repro::workloads::datasets;

fn main() {
    // Payment network proxy and a stream of new transactions: the last
    // 300 edges arrive one at a time.
    let full = datasets::build("tr").expect("registered dataset");
    let all_edges: Vec<(u32, u32)> = full.edges().collect();
    let (base_edges, stream) = all_edges.split_at(all_edges.len() - 300);

    let mut builder = GraphBuilder::new(full.num_vertices());
    builder
        .add_edges(base_edges.iter().copied())
        .expect("base edges are valid");
    let mut network = DynamicGraph::new(builder.finish());

    let hop_limit = 6u32;
    // A standing monitoring query (e.g. two flagged accounts) that the
    // analyst dashboard refreshes after every transaction.
    let (watch_s, watch_t) = (0u32, 1u32);

    let mut alerts = 0usize;
    let mut total_cycles = 0u64;
    let mut worst: Option<(u32, u32, u64)> = None;
    let mut cache = PlanCache::default();

    for &(payer, payee) in stream {
        // Query the graph as of *before* the insertion, straight off the
        // overlay, then mutate. The engine's shared borrow of the graph
        // lapses before `insert_edge`; the cache value is what persists.
        {
            let mut engine = DynamicEngine::with_cache(&network, PathEnumConfig::default(), cache);
            let request = QueryRequest::paths(payee, payer).max_hops(hop_limit - 1);
            if let Ok(response) = engine.execute(&request) {
                let cycles = response.num_results();
                if cycles > 0 {
                    alerts += 1;
                    total_cycles += cycles;
                    if worst.is_none_or(|(_, _, c)| cycles > c) {
                        worst = Some((payer, payee, cycles));
                    }
                }
            }
            // The dashboard refresh: usually a cache hit — and thanks to
            // surgical retention, often a hit even right after an
            // insertion somewhere else in the graph.
            engine
                .execute(&QueryRequest::paths(watch_s, watch_t).max_hops(hop_limit))
                .expect("watch endpoints are in range");
            cache = engine.into_cache();
        }
        network.insert_edge(payer, payee);
    }

    let stats = cache.stats();
    println!(
        "replayed {} transaction insertions (k = {hop_limit}), zero snapshots",
        stream.len()
    );
    println!("alerts raised (new edge closes >= 1 cycle): {alerts}");
    println!("total cycles detected: {total_cycles}");
    if let Some((payer, payee, count)) = worst {
        println!("hottest edge: {payer} -> {payee} closed {count} cycles");
    }
    println!(
        "plan cache over the stream: {} hits / {} lookups ({:.0}% hit rate), \
         {} hits retained across mutations, {} invalidations",
        stats.hits,
        stats.hits + stats.misses,
        100.0 * stats.hit_rate(),
        stats.retained,
        stats.invalidations,
    );
    assert!(
        stats.retained > 0,
        "the watch query should survive at least one unrelated insertion"
    );
}

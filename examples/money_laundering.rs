//! Money-laundering detection with accumulative risk scores
//! (motivating application 1, Appendix E's Algorithm 7).
//!
//! Accounts are vertices, transactions edges. Each edge carries a risk
//! factor; a single factor is not conclusive, so investigators ask for
//! transaction chains between two accounts whose *total* risk passes a
//! threshold — HcPE with an accumulative-value constraint.
//!
//! ```text
//! cargo run --release --example money_laundering
//! ```

use pathenum_repro::prelude::*;
use pathenum_repro::workloads::datasets;
use pathenum_repro::workloads::{generate_queries, QueryGenConfig};

/// Deterministic pseudo-risk in 0..=9 derived from the edge endpoints
/// (stand-in for a real risk model: foreign capital, new company, ...).
fn risk(from: u32, to: u32) -> u64 {
    let mix = (u64::from(from) << 32 | u64::from(to)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (mix >> 60) % 10
}

fn main() {
    let network = datasets::build("ep").expect("registered dataset");
    let hop_limit = 5u32; // launderers prefer short chains (2-hop flags)
    let risk_threshold = 18u64;

    // Investigate the five busiest account pairs the workload generator
    // proposes.
    let queries = generate_queries(&network, QueryGenConfig::paper_default(5, hop_limit, 7));

    let mut engine = QueryEngine::new(&network, PathEnumConfig::default());
    for query in queries {
        // The accumulative constraint is a first-class request option;
        // the engine routes it through its scratch-reusing index build.
        let request = QueryRequest::from_query(query)
            .accumulative(AccumulativeQuery {
                identity: 0u64,
                combine: |a, b| a + b,
                weight: risk,
                check: |&total: &u64| total >= risk_threshold,
                prune: None, // risk must *exceed* a floor: no monotone prune
            })
            .collect_paths(true);
        let suspicious = engine
            .execute(&request)
            .expect("generated queries are in range");

        // Each request builds its own query-local index (the paper's
        // design); the engine's reused scratch keeps the second build
        // allocation-free.
        let all = engine
            .execute(&QueryRequest::from_query(query))
            .expect("generated queries are in range");

        println!(
            "accounts {} -> {} (k = {hop_limit}): {} of {} chains have total risk >= {risk_threshold}",
            query.s,
            query.t,
            suspicious.num_results(),
            all.num_results(),
        );
        if let Some(path) = suspicious.paths.first() {
            let total: u64 = path.windows(2).map(|w| risk(w[0], w[1])).sum();
            println!("  e.g. {:?} with total risk {total}", path);
        }
    }
}

//! Money-laundering detection with accumulative risk scores
//! (motivating application 1, Appendix E's Algorithm 7).
//!
//! Accounts are vertices, transactions edges. Each edge carries a risk
//! factor; a single factor is not conclusive, so investigators ask for
//! transaction chains between two accounts whose *total* risk passes a
//! threshold — HcPE with an accumulative-value constraint.
//!
//! ```text
//! cargo run --release --example money_laundering
//! ```

use pathenum_repro::prelude::*;
use pathenum_repro::workloads::datasets;
use pathenum_repro::workloads::{generate_queries, QueryGenConfig};

/// Deterministic pseudo-risk in 0..=9 derived from the edge endpoints
/// (stand-in for a real risk model: foreign capital, new company, ...).
fn risk(from: u32, to: u32) -> u64 {
    let mix = (u64::from(from) << 32 | u64::from(to)).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    (mix >> 60) % 10
}

fn main() {
    let network = datasets::build("ep").expect("registered dataset");
    let hop_limit = 5u32; // launderers prefer short chains (2-hop flags)
    let risk_threshold = 18u64;

    // Investigate the five busiest account pairs the workload generator
    // proposes.
    let queries = generate_queries(&network, QueryGenConfig::paper_default(5, hop_limit, 7));

    for query in queries {
        let index = Index::build(&network, query);
        let constrained = AccumulativeQuery {
            identity: 0u64,
            combine: |a, b| a + b,
            weight: risk,
            check: |&total: &u64| total >= risk_threshold,
            prune: None, // risk must *exceed* a floor: no monotone prune
        };
        let mut suspicious = CollectingSink::default();
        let mut counters = Counters::default();
        accumulative_dfs(&index, &constrained, &mut suspicious, &mut counters);

        let mut all = CountingSink::default();
        let mut all_counters = Counters::default();
        pathenum_repro::core::enumerate::idx_dfs(&index, &mut all, &mut all_counters);

        println!(
            "accounts {} -> {} (k = {hop_limit}): {} of {} chains have total risk >= {risk_threshold}",
            query.s,
            query.t,
            suspicious.paths.len(),
            all.count,
        );
        if let Some(path) = suspicious.paths.first() {
            let total: u64 = path.windows(2).map(|w| risk(w[0], w[1])).sum();
            println!("  e.g. {:?} with total risk {total}", path);
        }
    }
}

//! A small serving fleet in one process: many named graphs, many
//! tenants, one worker pool — with cost-based admission control in
//! front of it.
//!
//! Demonstrates the catalog layers built on top of [`PathEnumService`]:
//!
//! * [`GraphCatalog`] — named graphs behind one endpoint, each with
//!   per-tenant plan caches under an entry quota;
//! * [`CatalogService`] — routed `CatalogRequest { graph, tenant,
//!   request }` submission with plan-first admission: every request is
//!   priced by its planned [`modeled cost`](pathenum_repro::prelude::PhysicalPlan::modeled_cost)
//!   before a worker is committed to it;
//! * two-lane dispatch — cheap plans ride the interactive lane past
//!   queued batch work;
//! * `publish` — atomic epoch swap of a live graph; in-flight queries
//!   finish on the epoch they were admitted under, and only the
//!   republished graph's cached plans are invalidated;
//! * [`AdmissionDecision`] — an EXPLAIN-style record of *why* each
//!   request was admitted or shed.
//!
//! ```text
//! cargo run --release --example multi_tenant_catalog
//! ```

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use pathenum_repro::graph::generators::{erdos_renyi, power_law, PowerLawConfig};
use pathenum_repro::prelude::*;

fn main() {
    // Two tenants share one process serving two differently-shaped
    // graphs. The admission knobs are deliberately tight so the example
    // exercises every verdict.
    let social = Arc::new(power_law(PowerLawConfig::social(4_000, 5, 11)));
    let citations = Arc::new(erdos_renyi(2_000, 9_000, 23));

    let service = CatalogService::new(
        PathEnumConfig::default(),
        CatalogConfig {
            workers: 2,
            tenant_cache_quota: 16,
            cache_shards: 4,
            admission: AdmissionConfig {
                cost_budget: Some(2_000_000),
                // Sized for the burst below: analytics submits 6 of the
                // 9 requests before anything is waited on, and on a
                // slow 1-core machine all 6 can be outstanding at once.
                max_queue_per_tenant: 8,
                interactive_cost_threshold: 500,
            },
            ..CatalogConfig::default()
        },
    );
    service.catalog().register("social", Arc::clone(&social));
    service
        .catalog()
        .register("citations", Arc::clone(&citations));
    println!(
        "catalog: {:?} on {} workers; tenant cache quota {} entries",
        service.catalog().names(),
        service.workers(),
        service.catalog().tenant_cache_quota(),
    );

    // --- Routed, priced, two-lane submission -------------------------
    let mut tickets = Vec::new();
    for _round in 0..3 {
        // feed-api runs cheap 4-hop lookups; analytics runs a deeper
        // 6-hop sweep whose modeled cost lands it on the batch lane.
        for (graph, tenant, t, hops) in [
            ("social", "feed-api", 97u32, 4u32),
            ("social", "analytics", 1_003, 6),
            ("citations", "analytics", 42, 4),
        ] {
            let request = QueryRequest::paths(0, t)
                .max_hops(hops)
                .limit(2_000)
                .collect_paths(true);
            tickets.push(service.submit(CatalogRequest::new(graph, tenant, request)));
        }
    }
    let total = tickets.len();
    let mut by_lane = [0u32; 2];
    for ticket in tickets {
        let lane = ticket.decision().expect("admission ran").lane;
        by_lane[usize::from(lane == Lane::Batch)] += 1;
        ticket.wait().expect("valid query");
    }
    assert!(
        by_lane[0] > 0 && by_lane[1] > 0,
        "the stream must exercise both lanes"
    );
    println!(
        "\n{total} routed requests served: {} interactive, {} batch (threshold 500 modeled cost)",
        by_lane[0], by_lane[1],
    );
    for graph in ["social", "citations"] {
        for (tenant, entries, stats) in service.catalog().tenant_accounting(graph) {
            println!(
                "  {graph}/{tenant}: {} lookups, {} hits, {entries} cached plans",
                stats.lookups, stats.hits,
            );
        }
    }

    // --- The EXPLAIN-style admission record --------------------------
    // Renders like an EXPLAIN plan: the priced inputs, then the verdict.
    let ticket = service.submit(CatalogRequest::new(
        "social",
        "feed-api",
        QueryRequest::paths(0, 97).max_hops(4).limit(2_000),
    ));
    println!("\n{}", ticket.decision().expect("admission ran"));
    ticket.wait().expect("valid query");

    // A tenant that floods its queue gets shed with a retry hint while
    // the blocker is still running — the rejection costs no worker time.
    let flooded = CatalogService::new(
        PathEnumConfig::default(),
        CatalogConfig {
            workers: 1,
            admission: AdmissionConfig {
                cost_budget: None,
                max_queue_per_tenant: 1,
                interactive_cost_threshold: 50_000,
            },
            ..CatalogConfig::default()
        },
    );
    flooded.catalog().register("social", Arc::clone(&social));
    // The blocker parks its worker on a gate inside the accumulative
    // weight closure (evaluated during enumeration, never during the
    // submitter-thread planning), so its queue slot is still occupied
    // when the flood arrives — without racing a fast worker.
    let gate = Arc::new(AtomicBool::new(false));
    let blocker = flooded.submit(CatalogRequest::new(
        "social",
        "batch-export",
        QueryRequest::paths(0, 1_003)
            .max_hops(6)
            .accumulative(AccumulativeQuery {
                identity: 0u64,
                combine: |a, b| a + b,
                weight: {
                    let gate = Arc::clone(&gate);
                    move |_, _| {
                        while !gate.load(Ordering::Acquire) {
                            std::thread::yield_now();
                        }
                        1u64
                    }
                },
                check: |_: &u64| true,
                prune: None,
            }),
    ));
    let shed = flooded.submit(CatalogRequest::new(
        "social",
        "batch-export",
        QueryRequest::paths(0, 1_003).max_hops(6),
    ));
    println!("{}", shed.decision().expect("admission ran"));
    let outcome = shed.wait_outcome();
    assert!(matches!(
        outcome.response,
        Err(PathEnumError::Overloaded { .. })
    ));
    assert_eq!(outcome.latency(), Duration::ZERO, "shed without execution");
    gate.store(true, Ordering::Release);
    blocker.wait().expect("valid query");

    // --- Publishing a new epoch under live traffic -------------------
    // Rebuild "social" with one extra hub edge and publish it while the
    // old epoch is still serving. In-flight tickets carry the epoch
    // they snapshotted; the swap is atomic and only "social"'s cached
    // plans are invalidated — "citations" tenants keep their warm hits.
    let before = service
        .execute(CatalogRequest::new(
            "social",
            "feed-api",
            QueryRequest::paths(0, 97).max_hops(4).collect_paths(true),
        ))
        .expect("valid query");

    let mut next = GraphBuilder::new(social.num_vertices());
    for u in 0..social.num_vertices() as u32 {
        for &v in social.out_neighbors(u) {
            next.add_edge(u, v).expect("in-range edge");
        }
    }
    next.add_edge(0, 97).expect("in-range edge");
    let in_flight = service.submit(CatalogRequest::new(
        "social",
        "feed-api",
        QueryRequest::paths(0, 97).max_hops(4).collect_paths(true),
    ));
    let epoch = service
        .catalog()
        .publish("social", Arc::new(next.finish()))
        .expect("registered graph");
    let after = service
        .execute(CatalogRequest::new(
            "social",
            "feed-api",
            QueryRequest::paths(0, 97).max_hops(4).collect_paths(true),
        ))
        .expect("valid query");
    let old = in_flight.wait_outcome();
    println!(
        "published epoch {epoch}: in-flight query served on epoch {:?} \
         ({} paths), post-publish on epoch {} ({} paths, one new direct edge)",
        old.epoch,
        old.response.expect("valid query").num_results(),
        epoch,
        after.num_results(),
    );
    assert_eq!(after.num_results(), before.num_results() + 1);
    let citations_stats = service
        .catalog()
        .tenant_cache_stats("citations", "analytics")
        .expect("warmed above");
    assert_eq!(
        citations_stats.invalidations, 0,
        "publishing social must not touch citations' caches"
    );
    println!(
        "citations/analytics cache untouched by the publish: {} hits, 0 invalidations",
        citations_stats.hits
    );
    println!(
        "\n{} queries routed through the catalog in total",
        service.queries_submitted()
    );
}

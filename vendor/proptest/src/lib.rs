//! Offline stand-in for the subset of the `proptest` 1.x API this
//! workspace's tests use.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal implementation: deterministic random
//! case generation (no shrinking, no persisted failure files) behind the
//! same macro and `Strategy` surface. Supported:
//!
//! * `proptest! { #![proptest_config(...)] #[test] fn f(pat in strategy, ...) { ... } }`
//! * integer `Range` / `RangeInclusive` strategies, tuples, [`Just`],
//!   [`collection::vec`], `prop_flat_map` / `prop_map`
//! * `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`
//!
//! Failures panic with the generated inputs formatted into the assertion
//! message (tests here interpolate them explicitly), but are not shrunk.

/// Deterministic RNG handed to strategies (xoshiro256++ core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        fn splitmix64(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
        let mut sm = seed;
        TestRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s = [s0, s1, s2, s3];
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        self.state = s;
        result
    }

    fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }
}

/// Stable 64-bit FNV-1a hash of a test's name, used as its base seed so
/// every test function draws an independent, reproducible stream.
pub fn seed_for(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A generator of values for one test parameter.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Derives a dependent strategy from each generated value.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }

    /// Maps generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<B, F> {
    base: B,
    f: F,
}

impl<B, S, F> Strategy for FlatMap<B, F>
where
    B: Strategy,
    S: Strategy,
    F: Fn(B::Value) -> S,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let base = self.base.generate(rng);
        (self.f)(base).generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, U, F> Strategy for Map<B, F>
where
    B: Strategy,
    F: Fn(B::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                start + rng.below((end - start) as u64 + 1) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Length specification for [`vec`](fn@vec).
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    /// Strategy for `Vec`s whose elements come from `element` and whose
    /// length is drawn from `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec`](fn@vec).
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Mirrors `proptest::test_runner::Config` for the fields used here.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Why a test case did not pass; `Reject`ed cases are skipped, `Fail`ed
/// ones abort the test.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assume!` precondition did not hold; the case is skipped.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// A failure carrying `message`.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }

    /// A rejected (skipped) case.
    pub fn reject() -> Self {
        TestCaseError::Reject
    }
}

/// The common import surface (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Just, Strategy, TestCaseError};
}

/// Property-test entry point; see the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($config:expr; $( $(#[$meta:meta])* fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut rng =
                    $crate::TestRng::seed_from_u64($crate::seed_for(stringify!($name)));
                for __case in 0..config.cases {
                    $(let $pat = $crate::Strategy::generate(&$strategy, &mut rng);)+
                    // The closure mirrors real proptest: the body may
                    // `return Ok(())` early, `prop_assume!` rejects the
                    // case, `prop_assert*!` fails it.
                    let outcome: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => {}
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed on case {}: {}",
                                stringify!($name), __case, msg);
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current case by returning
/// `Err(TestCaseError::Fail)` (no shrinking in this stand-in).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` analogue of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = ($left, $right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = ($left, $right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            left,
            right,
            format!($($fmt)+)
        );
    }};
}

/// `assert_ne!` analogue of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = ($left, $right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = ($left, $right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `(left != right)`\n  both: `{:?}`: {}",
            left,
            format!($($fmt)+)
        );
    }};
}

/// Skips the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let (a, b) = (3u32..9, 2usize..=4).generate(&mut rng);
            assert!((3..9).contains(&a));
            assert!((2..=4).contains(&b));
        }
    }

    #[test]
    fn flat_map_feeds_dependent_strategies() {
        let mut rng = crate::TestRng::seed_from_u64(2);
        let strat = (2u32..10).prop_flat_map(|n| (Just(n), crate::collection::vec(0u32..n, 0..8)));
        for _ in 0..500 {
            let (n, xs) = strat.generate(&mut rng);
            assert!(xs.iter().all(|&x| x < n));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let gen_with = |seed: u64| {
            let mut rng = crate::TestRng::seed_from_u64(seed);
            (0..32)
                .map(|_| (0u64..1 << 40).generate(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen_with(7), gen_with(7));
        assert_ne!(gen_with(7), gen_with(8));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_runs(x in 0u32..100, (lo, hi) in (0u32..5, 10u32..20)) {
            prop_assume!(x != 3);
            prop_assert!(x < 100);
            prop_assert!(lo < hi);
            prop_assert_ne!(x, 3);
            prop_assert_eq!(x, x, "reflexive {}", x);
        }
    }
}

//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::gen_range` over integer ranges,
//! `Rng::gen_bool`, and `SliceRandom::shuffle`.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors this minimal, dependency-free implementation instead
//! of the real crate. The generator is xoshiro256++ seeded through
//! SplitMix64 — deterministic for a fixed seed, which is all the graph
//! generators and query samplers require. Streams differ from upstream
//! `StdRng` (ChaCha12), so seeds are not portable to the real crate.

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range`. Panics on an empty range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} out of range"
        );
        // 53 high-quality mantissa bits, as the real implementation uses.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Uniform-range machinery (mirrors `rand::distributions` loosely).
pub mod distributions {
    use super::RngCore;

    /// A range that can be sampled from directly.
    pub trait SampleRange<T> {
        /// Draws one value uniformly from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! impl_sample_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let span = (self.end - self.start) as u64;
                    // Multiply-shift bounded sampling; the modulo bias for
                    // test-scale spans is far below observable.
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    self.start + hi as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample from empty range");
                    let span = (end - start) as u64 + 1;
                    if span == 0 {
                        // Full-width inclusive range: every value is valid.
                        return rng.next_u64() as $t;
                    }
                    let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                    start + hi as $t
                }
            }
        )*};
    }

    impl_sample_range!(u8, u16, u32, u64, usize);
}

/// The stock generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Drop-in for `rand::rngs::StdRng`: xoshiro256++ under the hood.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                state: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.state;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.state = s;
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling for slices (the only `SliceRandom` method used here).
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}

//! Property tests for the request/response layer: `execute` and
//! `stream` must agree path-for-path with the legacy one-shot
//! `path_enum` and with the Appendix E constraint free functions, and
//! the stopping rules (limit, deadline, cancellation) must be
//! *reported*, never silent.

use std::time::Duration;

use proptest::prelude::*;

use pathenum_repro::core::constraints::{accumulative_dfs, automaton_dfs};
use pathenum_repro::graph::generators::{erdos_renyi, power_law, PowerLawConfig};
use pathenum_repro::prelude::*;

fn graph_from_edges(n: u32, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        if u != v {
            b.add_edge(u, v).expect("in-range edge");
        }
    }
    b.finish()
}

fn arb_graph() -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (4u32..14).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..70);
        (Just(n), edges)
    })
}

/// Deterministic pseudo-weight per edge in 0..8.
fn weight(u: u32, v: u32) -> u64 {
    (u64::from(u) << 32 | u64::from(v)).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 61
}

/// Deterministic binary label per edge.
fn label(u: u32, v: u32) -> u32 {
    (((u64::from(u) << 32 | u64::from(v)).wrapping_mul(0xd134_2543_de82_ef95) >> 63) & 1) as u32
}

fn legacy_paths(g: &CsrGraph, q: Query) -> Vec<Vec<VertexId>> {
    let mut sink = CollectingSink::default();
    path_enum(g, q, PathEnumConfig::default(), &mut sink).expect("valid query");
    sink.sorted_paths()
}

fn execute_paths(g: &CsrGraph, req: &QueryRequest<'_>) -> Vec<Vec<VertexId>> {
    let mut engine = QueryEngine::new(g, PathEnumConfig::default());
    let response = engine.execute(req).expect("valid request");
    assert_eq!(
        response.termination,
        Termination::Completed,
        "unbounded request completes"
    );
    let mut paths = response.paths;
    paths.sort_unstable();
    paths
}

fn stream_paths(g: &CsrGraph, req: &QueryRequest<'_>) -> Vec<Vec<VertexId>> {
    let mut engine = QueryEngine::new(g, PathEnumConfig::default());
    let mut stream = engine.stream(req).expect("valid request");
    let mut paths: Vec<Vec<VertexId>> = stream.by_ref().collect();
    assert_eq!(stream.termination(), Some(Termination::Completed));
    paths.sort_unstable();
    paths
}

/// An accumulative request: total pseudo-weight at least `threshold`.
#[allow(clippy::type_complexity)]
fn acc_query(threshold: u64) -> AccumulativeQuery<u64, fn(u32, u32) -> u64, impl Fn(&u64) -> bool> {
    AccumulativeQuery {
        identity: 0u64,
        combine: |a, b| a + b,
        weight,
        check: move |&total: &u64| total >= threshold,
        prune: None,
    }
}

/// The even-number-of-1-labels automaton used across the suite.
fn parity_automaton() -> Automaton {
    let mut a = Automaton::new(2, 2, 0).expect("valid shape");
    a.add_transition(0, 0, 0).expect("in range");
    a.add_transition(0, 1, 1).expect("in range");
    a.add_transition(1, 0, 1).expect("in range");
    a.add_transition(1, 1, 0).expect("in range");
    a.set_accepting(0).expect("in range");
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn execute_and_stream_agree_with_legacy_path_enum(
        (n, edges) in arb_graph(),
        k in 2u32..7,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let expected = legacy_paths(&g, q);
        let req = QueryRequest::from_query(q).collect_paths(true);
        prop_assert_eq!(execute_paths(&g, &req), expected.clone());
        prop_assert_eq!(stream_paths(&g, &req), expected);
    }

    #[test]
    fn predicate_requests_match_the_free_function(
        (n, edges) in arb_graph(),
        k in 2u32..6,
        threshold in 0u64..8,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let pred = move |u: u32, v: u32| weight(u, v) >= threshold;

        let mut oracle = CollectingSink::default();
        pathenum_repro::core::constraints::path_enum_with_predicate(
            &g, q, PathEnumConfig::default(), pred, &mut oracle,
        )
        .expect("valid query");
        let expected = oracle.sorted_paths();

        let req = QueryRequest::from_query(q).predicate(pred).collect_paths(true);
        prop_assert_eq!(execute_paths(&g, &req), expected.clone());
        prop_assert_eq!(stream_paths(&g, &req), expected);
    }

    #[test]
    fn accumulative_requests_match_the_free_function(
        (n, edges) in arb_graph(),
        k in 2u32..6,
        threshold in 0u64..20,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");

        let mut oracle = CollectingSink::default();
        let mut counters = Counters::default();
        accumulative_dfs(&Index::build(&g, q), &acc_query(threshold), &mut oracle, &mut counters);
        let expected = oracle.sorted_paths();

        let req =
            QueryRequest::from_query(q).accumulative(acc_query(threshold)).collect_paths(true);
        prop_assert_eq!(execute_paths(&g, &req), expected.clone());
        prop_assert_eq!(stream_paths(&g, &req), expected);
    }

    #[test]
    fn automaton_requests_match_the_free_function(
        (n, edges) in arb_graph(),
        k in 2u32..6,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let automaton = parity_automaton();

        let mut oracle = CollectingSink::default();
        let mut counters = Counters::default();
        automaton_dfs(&Index::build(&g, q), &automaton, label, &mut oracle, &mut counters);
        let expected = oracle.sorted_paths();

        let req =
            QueryRequest::from_query(q).automaton(automaton, label).collect_paths(true);
        prop_assert_eq!(execute_paths(&g, &req), expected.clone());
        prop_assert_eq!(stream_paths(&g, &req), expected);
    }

    #[test]
    fn limits_truncate_and_are_reported(
        (n, edges) in arb_graph(),
        k in 2u32..6,
        limit in 1u64..6,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let total = legacy_paths(&g, q).len() as u64;
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());

        let req = QueryRequest::from_query(q).limit(limit).collect_paths(true);
        let response = engine.execute(&req).expect("valid request");
        prop_assert_eq!(response.paths.len() as u64, total.min(limit));
        let expected_termination = if total >= limit {
            Termination::LimitReached
        } else {
            Termination::Completed
        };
        prop_assert_eq!(response.termination, expected_termination);

        let mut stream = engine.stream(&req).expect("valid request");
        let streamed = stream.by_ref().count() as u64;
        prop_assert_eq!(streamed, total.min(limit));
        prop_assert_eq!(stream.termination(), Some(expected_termination));
    }

    #[test]
    fn forced_methods_agree_under_requests(
        (n, edges) in arb_graph(),
        k in 2u32..6,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let run = |engine: &mut QueryEngine<'_>, m: Method| {
            let req = QueryRequest::from_query(q).method(m).collect_paths(true);
            let mut paths = engine.execute(&req).expect("valid request").paths;
            paths.sort_unstable();
            paths
        };
        let dfs = run(&mut engine, Method::IdxDfs);
        let join = run(&mut engine, Method::IdxJoin);
        prop_assert_eq!(dfs, join);
    }
}

#[test]
fn agreement_on_random_generator_families() {
    // Deterministic spot-checks on the generator families the paper's
    // dataset proxies come from: Erdős–Rényi and power-law digraphs.
    for seed in 0..4u64 {
        let graphs = [
            erdos_renyi(50, 300, seed),
            power_law(PowerLawConfig::social(50, 4, seed)),
        ];
        for g in &graphs {
            let mut engine = QueryEngine::new(g, PathEnumConfig::default());
            for t in 1..8u32 {
                let q = Query::new(0, t, 4).unwrap();
                let expected = legacy_paths(g, q);
                let req = QueryRequest::from_query(q).collect_paths(true);
                let mut executed = engine.execute(&req).expect("valid").paths;
                executed.sort_unstable();
                assert_eq!(executed, expected, "execute seed={seed} t={t}");
                let mut streamed: Vec<_> = engine.stream(&req).expect("valid").collect();
                streamed.sort_unstable();
                assert_eq!(streamed, expected, "stream seed={seed} t={t}");
            }
        }
    }
}

#[test]
fn zero_time_budget_is_reported_not_panicked() {
    let g = erdos_renyi(40, 240, 7);
    let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
    let req = QueryRequest::paths(0, 1)
        .max_hops(5)
        .time_budget(Duration::ZERO);
    let response = engine.execute(&req).expect("request is valid");
    assert_eq!(response.termination, Termination::DeadlineExceeded);
    assert_eq!(response.num_results(), 0);

    let mut stream = engine.stream(&req).expect("request is valid");
    assert!(stream.next().is_none());
    assert_eq!(stream.termination(), Some(Termination::DeadlineExceeded));
}

#[test]
fn tight_deadline_terminates_dense_enumeration_early() {
    // The complete digraph on 10 vertices has far too many k=6 paths to
    // finish in a microsecond; the deadline must cut in and be reported.
    let g = pathenum_repro::graph::generators::complete_digraph(10);
    let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
    let req = QueryRequest::paths(0, 9)
        .max_hops(6)
        .time_budget(Duration::from_micros(1))
        .collect_paths(true);
    let response = engine.execute(&req).expect("request is valid");
    assert_eq!(response.termination, Termination::DeadlineExceeded);
}

#[test]
fn cancellation_is_observed_and_reported() {
    let g = erdos_renyi(40, 240, 9);
    let mut engine = QueryEngine::new(&g, PathEnumConfig::default());

    // Pre-cancelled token: the evaluation never starts.
    let token = CancelToken::new();
    token.cancel();
    let req = QueryRequest::paths(0, 1).max_hops(5).cancel_token(token);
    let response = engine.execute(&req).expect("request is valid");
    assert_eq!(response.termination, Termination::Cancelled);
    assert_eq!(response.num_results(), 0);

    // Mid-stream cancellation: pull a result, cancel, observe the stop.
    let token = CancelToken::new();
    let req = QueryRequest::paths(0, 1)
        .max_hops(5)
        .cancel_token(token.clone());
    let mut stream = engine.stream(&req).expect("request is valid");
    let first = stream.next();
    token.cancel();
    let after = stream.next();
    if first.is_some() {
        assert!(after.is_none(), "no results after cancellation");
        assert_eq!(stream.termination(), Some(Termination::Cancelled));
    }
}

#[test]
fn invalid_requests_come_back_as_errors_not_panics() {
    let g = erdos_renyi(20, 60, 1);
    let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
    assert_eq!(
        engine
            .execute(&QueryRequest::paths(0, 10_000).max_hops(4))
            .unwrap_err(),
        PathEnumError::VertexOutOfRange(10_000)
    );
    assert_eq!(
        engine
            .execute(&QueryRequest::paths(3, 3).max_hops(4))
            .unwrap_err(),
        PathEnumError::EqualEndpoints
    );
    assert_eq!(
        engine.execute(&QueryRequest::paths(0, 1)).unwrap_err(),
        PathEnumError::HopConstraintTooSmall(0)
    );
    // The legacy one-shot is routed through the same validation.
    let mut sink = CountingSink::default();
    assert_eq!(
        path_enum(
            &g,
            Query::new(0, 10_000, 4).unwrap(),
            PathEnumConfig::default(),
            &mut sink
        )
        .unwrap_err(),
        PathEnumError::VertexOutOfRange(10_000)
    );
}

//! Property tests for the request/response layer: `execute` and
//! `stream` must agree path-for-path with the legacy one-shot
//! `path_enum` and with the Appendix E constraint free functions, and
//! the stopping rules (limit, deadline, cancellation) must be
//! *reported*, never silent.

use std::time::Duration;

use proptest::prelude::*;

use pathenum_repro::core::constraints::{accumulative_dfs, automaton_dfs};
use pathenum_repro::graph::generators::{erdos_renyi, power_law, PowerLawConfig};
use pathenum_repro::prelude::*;

fn graph_from_edges(n: u32, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        if u != v {
            b.add_edge(u, v).expect("in-range edge");
        }
    }
    b.finish()
}

fn arb_graph() -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (4u32..14).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..70);
        (Just(n), edges)
    })
}

/// Deterministic pseudo-weight per edge in 0..8.
fn weight(u: u32, v: u32) -> u64 {
    (u64::from(u) << 32 | u64::from(v)).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 61
}

/// Deterministic binary label per edge.
fn label(u: u32, v: u32) -> u32 {
    (((u64::from(u) << 32 | u64::from(v)).wrapping_mul(0xd134_2543_de82_ef95) >> 63) & 1) as u32
}

fn legacy_paths(g: &CsrGraph, q: Query) -> Vec<Vec<VertexId>> {
    let mut sink = CollectingSink::default();
    path_enum(g, q, PathEnumConfig::default(), &mut sink).expect("valid query");
    sink.sorted_paths()
}

fn execute_paths(g: &CsrGraph, req: &QueryRequest<'_>) -> Vec<Vec<VertexId>> {
    let mut engine = QueryEngine::new(g, PathEnumConfig::default());
    let response = engine.execute(req).expect("valid request");
    assert_eq!(
        response.termination,
        Termination::Completed,
        "unbounded request completes"
    );
    let mut paths = response.paths;
    paths.sort_unstable();
    paths
}

fn stream_paths(g: &CsrGraph, req: &QueryRequest<'_>) -> Vec<Vec<VertexId>> {
    let mut engine = QueryEngine::new(g, PathEnumConfig::default());
    let mut stream = engine.stream(req).expect("valid request");
    let mut paths: Vec<Vec<VertexId>> = stream.by_ref().collect();
    assert_eq!(stream.termination(), Some(Termination::Completed));
    paths.sort_unstable();
    paths
}

/// An accumulative request: total pseudo-weight at least `threshold`.
#[allow(clippy::type_complexity)]
fn acc_query(threshold: u64) -> AccumulativeQuery<u64, fn(u32, u32) -> u64, impl Fn(&u64) -> bool> {
    AccumulativeQuery {
        identity: 0u64,
        combine: |a, b| a + b,
        weight,
        check: move |&total: &u64| total >= threshold,
        prune: None,
    }
}

/// The even-number-of-1-labels automaton used across the suite.
fn parity_automaton() -> Automaton {
    let mut a = Automaton::new(2, 2, 0).expect("valid shape");
    a.add_transition(0, 0, 0).expect("in range");
    a.add_transition(0, 1, 1).expect("in range");
    a.add_transition(1, 0, 1).expect("in range");
    a.add_transition(1, 1, 0).expect("in range");
    a.set_accepting(0).expect("in range");
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn execute_and_stream_agree_with_legacy_path_enum(
        (n, edges) in arb_graph(),
        k in 2u32..7,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let expected = legacy_paths(&g, q);
        let req = QueryRequest::from_query(q).collect_paths(true);
        prop_assert_eq!(execute_paths(&g, &req), expected.clone());
        prop_assert_eq!(stream_paths(&g, &req), expected);
    }

    #[test]
    fn predicate_requests_match_the_free_function(
        (n, edges) in arb_graph(),
        k in 2u32..6,
        threshold in 0u64..8,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let pred = move |u: u32, v: u32| weight(u, v) >= threshold;

        let mut oracle = CollectingSink::default();
        pathenum_repro::core::constraints::path_enum_with_predicate(
            &g, q, PathEnumConfig::default(), pred, &mut oracle,
        )
        .expect("valid query");
        let expected = oracle.sorted_paths();

        let req = QueryRequest::from_query(q).predicate(pred).collect_paths(true);
        prop_assert_eq!(execute_paths(&g, &req), expected.clone());
        prop_assert_eq!(stream_paths(&g, &req), expected);
    }

    #[test]
    fn accumulative_requests_match_the_free_function(
        (n, edges) in arb_graph(),
        k in 2u32..6,
        threshold in 0u64..20,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");

        let mut oracle = CollectingSink::default();
        let mut counters = Counters::default();
        accumulative_dfs(&Index::build(&g, q), &acc_query(threshold), &mut oracle, &mut counters);
        let expected = oracle.sorted_paths();

        let req =
            QueryRequest::from_query(q).accumulative(acc_query(threshold)).collect_paths(true);
        prop_assert_eq!(execute_paths(&g, &req), expected.clone());
        prop_assert_eq!(stream_paths(&g, &req), expected);
    }

    #[test]
    fn automaton_requests_match_the_free_function(
        (n, edges) in arb_graph(),
        k in 2u32..6,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let automaton = parity_automaton();

        let mut oracle = CollectingSink::default();
        let mut counters = Counters::default();
        automaton_dfs(&Index::build(&g, q), &automaton, label, &mut oracle, &mut counters);
        let expected = oracle.sorted_paths();

        let req =
            QueryRequest::from_query(q).automaton(automaton, label).collect_paths(true);
        prop_assert_eq!(execute_paths(&g, &req), expected.clone());
        prop_assert_eq!(stream_paths(&g, &req), expected);
    }

    #[test]
    fn limits_truncate_and_are_reported(
        (n, edges) in arb_graph(),
        k in 2u32..6,
        limit in 1u64..6,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let total = legacy_paths(&g, q).len() as u64;
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());

        let req = QueryRequest::from_query(q).limit(limit).collect_paths(true);
        let response = engine.execute(&req).expect("valid request");
        prop_assert_eq!(response.paths.len() as u64, total.min(limit));
        let expected_termination = if total >= limit {
            Termination::LimitReached
        } else {
            Termination::Completed
        };
        prop_assert_eq!(response.termination, expected_termination);

        let mut stream = engine.stream(&req).expect("valid request");
        let streamed = stream.by_ref().count() as u64;
        prop_assert_eq!(streamed, total.min(limit));
        prop_assert_eq!(stream.termination(), Some(expected_termination));
    }

    #[test]
    fn forced_methods_agree_under_requests(
        (n, edges) in arb_graph(),
        k in 2u32..6,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let run = |engine: &mut QueryEngine<'_>, m: Method| {
            let req = QueryRequest::from_query(q).method(m).collect_paths(true);
            let mut paths = engine.execute(&req).expect("valid request").paths;
            paths.sort_unstable();
            paths
        };
        let dfs = run(&mut engine, Method::IdxDfs);
        let join = run(&mut engine, Method::IdxJoin);
        prop_assert_eq!(dfs, join);
    }
}

#[test]
fn agreement_on_random_generator_families() {
    // Deterministic spot-checks on the generator families the paper's
    // dataset proxies come from: Erdős–Rényi and power-law digraphs.
    for seed in 0..4u64 {
        let graphs = [
            erdos_renyi(50, 300, seed),
            power_law(PowerLawConfig::social(50, 4, seed)),
        ];
        for g in &graphs {
            let mut engine = QueryEngine::new(g, PathEnumConfig::default());
            for t in 1..8u32 {
                let q = Query::new(0, t, 4).unwrap();
                let expected = legacy_paths(g, q);
                let req = QueryRequest::from_query(q).collect_paths(true);
                let mut executed = engine.execute(&req).expect("valid").paths;
                executed.sort_unstable();
                assert_eq!(executed, expected, "execute seed={seed} t={t}");
                let mut streamed: Vec<_> = engine.stream(&req).expect("valid").collect();
                streamed.sort_unstable();
                assert_eq!(streamed, expected, "stream seed={seed} t={t}");
            }
        }
    }
}

#[test]
fn zero_time_budget_is_reported_not_panicked() {
    let g = erdos_renyi(40, 240, 7);
    let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
    let req = QueryRequest::paths(0, 1)
        .max_hops(5)
        .time_budget(Duration::ZERO);
    let response = engine.execute(&req).expect("request is valid");
    assert_eq!(response.termination, Termination::DeadlineExceeded);
    assert_eq!(response.num_results(), 0);

    let mut stream = engine.stream(&req).expect("request is valid");
    assert!(stream.next().is_none());
    assert_eq!(stream.termination(), Some(Termination::DeadlineExceeded));
}

#[test]
fn tight_deadline_terminates_dense_enumeration_early() {
    // The complete digraph on 10 vertices has far too many k=6 paths to
    // finish in a microsecond; the deadline must cut in and be reported.
    let g = pathenum_repro::graph::generators::complete_digraph(10);
    let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
    let req = QueryRequest::paths(0, 9)
        .max_hops(6)
        .time_budget(Duration::from_micros(1))
        .collect_paths(true);
    let response = engine.execute(&req).expect("request is valid");
    assert_eq!(response.termination, Termination::DeadlineExceeded);
}

#[test]
fn cancellation_is_observed_and_reported() {
    let g = erdos_renyi(40, 240, 9);
    let mut engine = QueryEngine::new(&g, PathEnumConfig::default());

    // Pre-cancelled token: the evaluation never starts.
    let token = CancelToken::new();
    token.cancel();
    let req = QueryRequest::paths(0, 1).max_hops(5).cancel_token(token);
    let response = engine.execute(&req).expect("request is valid");
    assert_eq!(response.termination, Termination::Cancelled);
    assert_eq!(response.num_results(), 0);

    // Mid-stream cancellation: pull a result, cancel, observe the stop.
    let token = CancelToken::new();
    let req = QueryRequest::paths(0, 1)
        .max_hops(5)
        .cancel_token(token.clone());
    let mut stream = engine.stream(&req).expect("request is valid");
    let first = stream.next();
    token.cancel();
    let after = stream.next();
    if first.is_some() {
        assert!(after.is_none(), "no results after cancellation");
        assert_eq!(stream.termination(), Some(Termination::Cancelled));
    }
}

#[test]
fn preflight_stops_are_rejected_not_served() {
    // Pre-flight-stopped requests (pre-cancelled token, zero time
    // budget, zero limit) must not count as served, must not consult the
    // plan cache, and must say so in the response via
    // `CacheOutcome::Skipped`.
    let g = erdos_renyi(40, 240, 3);
    let mut engine = QueryEngine::new(&g, PathEnumConfig::default());

    let token = CancelToken::new();
    token.cancel();
    let cancelled = engine
        .execute(&QueryRequest::paths(0, 1).max_hops(4).cancel_token(token))
        .unwrap();
    assert_eq!(cancelled.termination, Termination::Cancelled);
    assert_eq!(cancelled.report.cache, CacheOutcome::Skipped);

    let expired = engine
        .execute(
            &QueryRequest::paths(0, 1)
                .max_hops(4)
                .time_budget(Duration::ZERO),
        )
        .unwrap();
    assert_eq!(expired.termination, Termination::DeadlineExceeded);
    assert_eq!(expired.report.cache, CacheOutcome::Skipped);

    let zero_limit = engine
        .execute(&QueryRequest::paths(0, 1).max_hops(4).limit(0))
        .unwrap();
    assert_eq!(zero_limit.termination, Termination::LimitReached);
    assert_eq!(zero_limit.report.cache, CacheOutcome::Skipped);

    assert_eq!(engine.queries_served(), 0, "nothing was evaluated");
    assert_eq!(engine.queries_rejected(), 3);
    let stats = engine.cache_stats();
    assert_eq!(
        stats.hits + stats.misses,
        0,
        "the cache was never consulted"
    );
    assert!(engine.plan_cache().is_empty());

    // A real request after the rejects is served normally.
    let served = engine
        .execute(&QueryRequest::paths(0, 1).max_hops(4))
        .unwrap();
    assert_ne!(served.report.cache, CacheOutcome::Skipped);
    assert_eq!(engine.queries_served(), 1);
    assert_eq!(engine.queries_rejected(), 3);

    // `stream()` applies the same rules: a pre-stopped stream counts as
    // rejected, never consults the cache, and reports its termination on
    // the first pull.
    let served_before = engine.queries_served();
    let lookups_before = {
        let s = engine.cache_stats();
        s.hits + s.misses
    };
    let token = CancelToken::new();
    token.cancel();
    let req = QueryRequest::paths(0, 1).max_hops(4).cancel_token(token);
    let mut stream = engine.stream(&req).unwrap();
    assert!(stream.next().is_none());
    assert_eq!(stream.termination(), Some(Termination::Cancelled));
    assert_eq!(engine.queries_served(), served_before);
    assert_eq!(engine.queries_rejected(), 4);
    let s = engine.cache_stats();
    assert_eq!(
        s.hits + s.misses,
        lookups_before,
        "no lookup from the stream"
    );

    // The dynamic engine pins the same accounting.
    let dynamic = DynamicGraph::new(erdos_renyi(20, 80, 5));
    let mut engine = DynamicEngine::new(&dynamic, PathEnumConfig::default());
    let response = engine
        .execute(&QueryRequest::paths(0, 1).max_hops(4).limit(0))
        .unwrap();
    assert_eq!(response.report.cache, CacheOutcome::Skipped);
    assert_eq!(engine.queries_served(), 0);
    assert_eq!(engine.queries_rejected(), 1);
}

#[test]
fn threads_downgrade_is_reported_in_the_plan() {
    // `threads(n)` is ignored by constrained execution — but not
    // silently: explain() and QueryResponse::plan must report the
    // effective thread count (1), never the requested one.
    let g = erdos_renyi(40, 260, 13);
    let mut engine = QueryEngine::new(&g, PathEnumConfig::default());

    let constrained = || {
        QueryRequest::paths(0, 1)
            .max_hops(4)
            .threads(8)
            .predicate(|_, to| to != 2)
            .constraint_fingerprint(3)
    };
    assert_eq!(constrained().effective_threads(), 1);
    assert_eq!(engine.explain(&constrained()).unwrap().threads, 1);
    let executed = engine.execute(&constrained()).unwrap();
    assert_eq!(executed.plan.unwrap().threads, 1);
    // ... including on the warm (cache-hit) path, where the stored plan
    // must not leak a stale thread count.
    let warm = engine.execute(&constrained()).unwrap();
    assert_eq!(warm.report.cache, CacheOutcome::Hit);
    assert_eq!(warm.plan.unwrap().threads, 1);

    let accumulative = QueryRequest::paths(0, 1)
        .max_hops(4)
        .threads(8)
        .accumulative(AccumulativeQuery {
            identity: 0u64,
            combine: |a, b| a + b,
            weight: |_, _| 1u64,
            check: |&v: &u64| v >= 1,
            prune: None,
        });
    assert_eq!(accumulative.effective_threads(), 1);
    assert_eq!(
        engine.execute(&accumulative).unwrap().plan.unwrap().threads,
        1
    );

    // Unconstrained requests keep their resolved count.
    let unconstrained = QueryRequest::paths(0, 1).max_hops(4).threads(4);
    assert_eq!(unconstrained.effective_threads(), 4);
    assert_eq!(engine.explain(&unconstrained).unwrap().threads, 4);
}

#[test]
fn invalid_requests_come_back_as_errors_not_panics() {
    let g = erdos_renyi(20, 60, 1);
    let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
    assert_eq!(
        engine
            .execute(&QueryRequest::paths(0, 10_000).max_hops(4))
            .unwrap_err(),
        PathEnumError::VertexOutOfRange(10_000)
    );
    assert_eq!(
        engine
            .execute(&QueryRequest::paths(3, 3).max_hops(4))
            .unwrap_err(),
        PathEnumError::EqualEndpoints
    );
    assert_eq!(
        engine.execute(&QueryRequest::paths(0, 1)).unwrap_err(),
        PathEnumError::HopConstraintTooSmall(0)
    );
    // The legacy one-shot is routed through the same validation.
    let mut sink = CountingSink::default();
    assert_eq!(
        path_enum(
            &g,
            Query::new(0, 10_000, 4).unwrap(),
            PathEnumConfig::default(),
            &mut sink
        )
        .unwrap_err(),
        PathEnumError::VertexOutOfRange(10_000)
    );
}

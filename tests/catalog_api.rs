//! Catalog-layer soundness: epoch swaps under live traffic, per-graph
//! (not global) cache invalidation, tenant quota isolation, and fast
//! rejection paths.
//!
//! The acceptance property: a `publish` mid-stream must never tear a
//! read — every response is wholly attributable to the single epoch its
//! ticket snapshotted at submit, matching a sequential oracle run on
//! that epoch's graph path-for-path.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;

use pathenum_repro::prelude::*;

fn graph_from_edges(n: u32, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        if u != v && u < n && v < n {
            b.add_edge(u, v).expect("in-range edge");
        }
    }
    b.finish()
}

fn catalog_service(workers: usize, admission: AdmissionConfig) -> CatalogService {
    CatalogService::new(
        PathEnumConfig::default(),
        CatalogConfig {
            workers,
            admission,
            ..CatalogConfig::default()
        },
    )
}

/// `n`, a list of edge sets (one graph generation each), and a target
/// stream, all vertex ids in range.
type GenerationsInstance = (u32, Vec<Vec<(u32, u32)>>, Vec<u32>);

fn arb_generations() -> impl Strategy<Value = GenerationsInstance> {
    (5u32..12).prop_flat_map(|n| {
        let generation = proptest::collection::vec((0..n, 0..n), 4..40);
        let generations = proptest::collection::vec(generation, 2..5);
        let targets = proptest::collection::vec(1..n, 6..18);
        (Just(n), generations, targets)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Epoch-swap safety: graphs are republished *while submissions are
    /// in flight*; every response must equal the sequential oracle of
    /// exactly the epoch its ticket snapshotted — no torn reads, and
    /// stale cached plans must never leak across a publish.
    #[test]
    fn epoch_swaps_never_tear_responses(
        (n, generations, targets) in arb_generations(),
    ) {
        let k = 4u32;
        let graphs: Vec<Arc<CsrGraph>> = generations
            .iter()
            .map(|edges| Arc::new(graph_from_edges(n, edges)))
            .collect();

        // Sequential oracle per (epoch, target).
        let mut oracles: Vec<HashMap<u32, Vec<Vec<u32>>>> = Vec::with_capacity(graphs.len());
        for graph in &graphs {
            let mut engine = QueryEngine::new(graph.as_ref(), PathEnumConfig::default());
            let mut per_target = HashMap::new();
            for &t in &targets {
                per_target.entry(t).or_insert_with(|| {
                    engine
                        .execute(&QueryRequest::paths(0, t).max_hops(k).collect_paths(true))
                        .expect("valid query")
                        .paths
                });
            }
            oracles.push(per_target);
        }

        let service = catalog_service(2, AdmissionConfig::disabled());
        service.catalog().register("live", Arc::clone(&graphs[0]));

        // Submit the target stream in slices, publishing the next epoch
        // between slices while earlier submissions may still be running.
        // The stream is replayed once per epoch so every epoch sees both
        // cold and warm (and freshly-invalidated) cache states.
        let mut tickets = Vec::new();
        for (e, graph) in graphs.iter().enumerate() {
            if e > 0 {
                let epoch = service.catalog().publish("live", Arc::clone(graph)).unwrap();
                prop_assert_eq!(epoch, e as u64);
            }
            for &t in &targets {
                let request = QueryRequest::paths(0, t).max_hops(k).collect_paths(true);
                tickets.push((t, service.submit(CatalogRequest::new("live", "tenant", request))));
            }
        }

        for (t, ticket) in tickets {
            let epoch = ticket.epoch().expect("registered graph") as usize;
            prop_assert!(epoch < graphs.len());
            let response = ticket.wait().expect("valid query");
            prop_assert_eq!(
                &response.paths,
                &oracles[epoch][&t],
                "target {} diverged from its epoch-{} oracle",
                t,
                epoch
            );
        }
    }
}

#[test]
fn publish_invalidates_per_graph_not_globally() {
    let a0 = Arc::new(graph_from_edges(5, &[(0, 1), (1, 2), (0, 2)]));
    let a1 = Arc::new(graph_from_edges(5, &[(0, 1), (1, 2), (2, 3)]));
    let b = Arc::new(graph_from_edges(5, &[(0, 1), (1, 4), (0, 4)]));
    let service = catalog_service(1, AdmissionConfig::disabled());
    service.catalog().register("a", a0);
    service.catalog().register("b", Arc::clone(&b));

    let request = || QueryRequest::paths(0, 2).max_hops(3).collect_paths(true);
    let run = |name: &str| {
        service
            .execute(CatalogRequest::new(name, "tenant", request()))
            .expect("valid query")
    };
    // Warm both graphs' tenant caches: one miss each, then a hit each.
    for _ in 0..2 {
        run("a");
        run("b");
    }
    let stats_a = service.catalog().tenant_cache_stats("a", "tenant").unwrap();
    let stats_b = service.catalog().tenant_cache_stats("b", "tenant").unwrap();
    assert_eq!((stats_a.misses, stats_a.hits), (1, 1));
    assert_eq!((stats_b.misses, stats_b.hits), (1, 1));

    // Publishing `a` must invalidate `a`'s stale entry on next lookup —
    // and leave `b`'s cache entirely alone.
    service.catalog().publish("a", a1).unwrap();
    let after_a = run("a");
    let after_b = run("b");
    assert_eq!(after_a.report.cache, CacheOutcome::Miss, "a replans");
    assert_eq!(after_b.report.cache, CacheOutcome::Hit, "b stays warm");
    let stats_a = service.catalog().tenant_cache_stats("a", "tenant").unwrap();
    let stats_b = service.catalog().tenant_cache_stats("b", "tenant").unwrap();
    assert_eq!(stats_a.invalidations, 1, "a's stale entry was invalidated");
    assert_eq!(stats_b.invalidations, 0, "b was untouched");
    assert_eq!(stats_b.hits, 2);
    // The republished graph actually serves the new topology.
    assert_eq!(after_a.num_results(), 1, "0-1-2 only; 0-2 edge is gone");
}

#[test]
fn tenant_quotas_isolate_and_account_evictions() {
    let graph = Arc::new(graph_from_edges(
        8,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (0, 3),
            (1, 3),
            (0, 2),
            (3, 4),
            (4, 5),
        ],
    ));
    let service = CatalogService::new(
        PathEnumConfig::default(),
        CatalogConfig {
            workers: 1,
            tenant_cache_quota: 2,
            cache_shards: 1,
            admission: AdmissionConfig::disabled(),
            ..CatalogConfig::default()
        },
    );
    service.catalog().register("g", graph);
    assert_eq!(service.catalog().tenant_cache_quota(), 2);

    // Tenant A cycles through 3 distinct shapes twice over a 2-entry
    // quota: evictions must be recorded. Tenant B runs one shape twice
    // and must keep hitting, unaffected by A's churn.
    for _ in 0..2 {
        for t in [1u32, 2, 3] {
            service
                .execute(CatalogRequest::new(
                    "g",
                    "tenant-a",
                    QueryRequest::paths(0, t).max_hops(3),
                ))
                .expect("valid query");
        }
        service
            .execute(CatalogRequest::new(
                "g",
                "tenant-b",
                QueryRequest::paths(0, 1).max_hops(3),
            ))
            .expect("valid query");
    }
    let stats_a = service
        .catalog()
        .tenant_cache_stats("g", "tenant-a")
        .unwrap();
    let stats_b = service
        .catalog()
        .tenant_cache_stats("g", "tenant-b")
        .unwrap();
    assert!(stats_a.evictions > 0, "3 shapes over quota 2 must evict");
    assert_eq!((stats_b.misses, stats_b.hits, stats_b.evictions), (1, 1, 0));

    let accounting = service.catalog().tenant_accounting("g");
    assert_eq!(accounting.len(), 2);
    assert!(
        accounting.iter().all(|(_, len, _)| *len <= 2),
        "quota holds"
    );
}

#[test]
fn unknown_graphs_reject_immediately() {
    let service = catalog_service(1, AdmissionConfig::disabled());
    let ticket = service.submit(CatalogRequest::new(
        "nope",
        "tenant",
        QueryRequest::paths(0, 1).max_hops(2),
    ));
    assert!(ticket.is_done(), "rejection resolves before submit returns");
    assert_eq!(ticket.epoch(), None);
    let outcome = ticket.wait_outcome();
    assert_eq!(outcome.latency(), Duration::ZERO);
    assert_eq!(outcome.response.unwrap_err(), PathEnumError::GraphNotFound);
}

#[test]
fn overloaded_rejections_resolve_promptly_with_a_hint() {
    // A dense digraph so the blocker query keeps the only worker busy.
    let mut edges = Vec::new();
    for u in 0..9u32 {
        for v in 0..9u32 {
            edges.push((u, v));
        }
    }
    let graph = Arc::new(graph_from_edges(9, &edges));
    let service = catalog_service(
        1,
        AdmissionConfig {
            cost_budget: None,
            max_queue_per_tenant: 1,
            interactive_cost_threshold: 1,
        },
    );
    service.catalog().register("dense", graph);

    // The blocker occupies the tenant's only admission slot until it
    // completes; everything submitted meanwhile must shed fast.
    let blocker = service.submit(CatalogRequest::new(
        "dense",
        "tenant",
        QueryRequest::paths(0, 8).max_hops(8),
    ));
    assert!(blocker.decision().unwrap().admitted());

    let before = Instant::now();
    let shed = service.submit(CatalogRequest::new(
        "dense",
        "tenant",
        QueryRequest::paths(0, 8).max_hops(8),
    ));
    assert!(shed.is_done(), "shed tickets resolve before submit returns");
    let decision = shed.decision().expect("a decision was recorded").clone();
    assert!(!decision.admitted());
    let rendered = decision.to_string();
    assert!(rendered.contains("verdict:           shed"));
    let outcome = shed.wait_outcome();
    // Prompt resolution: no waiting behind the blocker's long execution.
    assert!(before.elapsed() < Duration::from_secs(2));
    assert_eq!(outcome.started, outcome.finished);
    match outcome.response.unwrap_err() {
        PathEnumError::Overloaded { retry_hint } => {
            assert!(retry_hint > Duration::ZERO);
            assert!(retry_hint <= Duration::from_millis(100));
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }

    // Another tenant is not starved by tenant-a's full queue.
    let other = service
        .submit(CatalogRequest::new(
            "dense",
            "other-tenant",
            QueryRequest::paths(0, 1).max_hops(2),
        ))
        .wait();
    assert!(other.is_ok());
    assert!(blocker.wait().is_ok());
}

#[test]
fn admission_disabled_matches_the_single_service_byte_for_byte() {
    let graph = Arc::new(graph_from_edges(
        7,
        &[
            (0, 1),
            (1, 2),
            (2, 3),
            (0, 3),
            (1, 3),
            (3, 4),
            (2, 4),
            (0, 5),
            (5, 3),
        ],
    ));
    let service = catalog_service(2, AdmissionConfig::disabled());
    service.catalog().register("g", Arc::clone(&graph));
    let mut engine = QueryEngine::new(graph.as_ref(), PathEnumConfig::default());
    for t in 1..7u32 {
        let request = || QueryRequest::paths(0, t).max_hops(4).collect_paths(true);
        let expected = engine.execute(&request()).unwrap();
        let got = service
            .execute(CatalogRequest::new("g", "tenant", request()))
            .unwrap();
        assert_eq!(got.paths, expected.paths, "t={t}");
        assert_eq!(got.termination, expected.termination);
    }
    assert_eq!(service.queries_submitted(), 6);
}

//! Cross-crate agreement tests: every algorithm in the workspace must
//! produce exactly the same path set as the brute-force reference on
//! arbitrary directed graphs.

use proptest::prelude::*;

use pathenum_repro::core::reference::brute_force_paths;
use pathenum_repro::prelude::*;

/// Builds a graph from a raw edge list, ignoring self-loops.
fn graph_from_edges(n: u32, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        if u != v {
            b.add_edge(u, v).expect("in-range edge");
        }
    }
    b.finish()
}

fn arb_graph() -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (4u32..16).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..80);
        (Just(n), edges)
    })
}

fn reference_paths(g: &CsrGraph, q: Query) -> Vec<Vec<VertexId>> {
    let mut sink = CollectingSink::default();
    brute_force_paths(g, q, &mut sink);
    sink.sorted_paths()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_algorithms_agree_with_bruteforce(
        (n, edges) in arb_graph(),
        k in 2u32..7,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("0 != 1, valid k");
        let expected = reference_paths(&g, q);
        for algo in Algorithm::all() {
            let mut sink = CollectingSink::default();
            algo.run(&g, q, &mut sink);
            prop_assert_eq!(
                sink.sorted_paths(),
                expected.clone(),
                "algorithm {} disagrees on n={} k={} edges={:?}",
                algo, n, k, edges
            );
        }
    }

    #[test]
    fn pathenum_with_forced_optimizer_agrees(
        (n, edges) in arb_graph(),
        k in 2u32..7,
    ) {
        // tau = 0 forces the full-fledged estimator + join-order decision
        // on every query, exercising the IDX-JOIN path aggressively.
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let expected = reference_paths(&g, q);
        let mut sink = CollectingSink::default();
        path_enum(&g, q, PathEnumConfig { tau: 0, force: None }, &mut sink).expect("valid");
        prop_assert_eq!(sink.sorted_paths(), expected);
    }

    #[test]
    fn emitted_paths_are_simple_and_bounded(
        (n, edges) in arb_graph(),
        k in 2u32..7,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let mut sink = CollectingSink::default();
        path_enum(&g, q, PathEnumConfig::default(), &mut sink).expect("valid");
        for path in &sink.paths {
            prop_assert!(path.len() as u32 - 1 <= k);
            prop_assert_eq!(path[0], 0);
            prop_assert_eq!(*path.last().unwrap(), 1);
            let mut sorted = path.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), path.len(), "duplicate vertex in {:?}", path);
            for w in path.windows(2) {
                prop_assert!(g.has_edge(w[0], w[1]), "missing edge {:?}", w);
            }
        }
    }
}

#[test]
fn agreement_on_the_dataset_proxies() {
    // Heavier deterministic spot-check on realistic degree distributions.
    use pathenum_repro::workloads::{datasets, generate_queries, QueryGenConfig};
    let g = datasets::build("tw").expect("registered");
    let queries = generate_queries(&g, QueryGenConfig::paper_default(3, 4, 5));
    for q in queries {
        let mut reference: Option<Vec<Vec<VertexId>>> = None;
        for algo in [
            Algorithm::BcDfs,
            Algorithm::BcJoin,
            Algorithm::IdxDfs,
            Algorithm::IdxJoin,
        ] {
            let mut sink = CollectingSink::default();
            algo.run(&g, q, &mut sink);
            let paths = sink.sorted_paths();
            match &reference {
                None => reference = Some(paths),
                Some(r) => assert_eq!(&paths, r, "{algo} disagrees on {q:?}"),
            }
        }
    }
}

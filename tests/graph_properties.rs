//! Property tests for the graph substrate: CSR adjacency against a
//! naive edge-set model, BFS against a reference matrix relaxation, and
//! the PLL distance oracle against BFS.

use proptest::prelude::*;

use pathenum_repro::graph::bfs::{distances, BfsOptions, Direction};
use pathenum_repro::graph::pll::DistanceOracle;
use pathenum_repro::graph::types::INFINITE_DISTANCE;
use pathenum_repro::prelude::*;

fn graph_from_edges(n: u32, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        if u != v {
            b.add_edge(u, v).expect("in-range edge");
        }
    }
    b.finish()
}

fn arb_graph() -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (2u32..20).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..100);
        (Just(n), edges)
    })
}

/// Floyd–Warshall on the raw edge set: the trusted distance reference.
fn floyd_warshall(n: usize, edges: &[(u32, u32)]) -> Vec<Vec<u32>> {
    let inf = INFINITE_DISTANCE;
    let mut d = vec![vec![inf; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0;
    }
    for &(u, v) in edges {
        if u != v {
            d[u as usize][v as usize] = 1;
        }
    }
    for m in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = d[i][m].saturating_add(d[m][j]);
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    d
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csr_adjacency_matches_edge_set((n, edges) in arb_graph()) {
        let g = graph_from_edges(n, &edges);
        let set: std::collections::HashSet<(u32, u32)> =
            edges.iter().copied().filter(|&(u, v)| u != v).collect();
        prop_assert_eq!(g.num_edges(), set.len());
        for u in g.vertices() {
            for &v in g.out_neighbors(u) {
                prop_assert!(set.contains(&(u, v)));
                prop_assert!(g.in_neighbors(v).contains(&u));
            }
        }
        for &(u, v) in &set {
            prop_assert!(g.has_edge(u, v));
        }
    }

    #[test]
    fn bfs_matches_floyd_warshall((n, edges) in arb_graph(), source in 0u32..20) {
        prop_assume!(source < n);
        let g = graph_from_edges(n, &edges);
        let reference = floyd_warshall(n as usize, &edges);
        let forward = distances(&g, source, BfsOptions::default());
        let backward = distances(
            &g,
            source,
            BfsOptions { direction: Direction::Backward, ..BfsOptions::default() },
        );
        for v in 0..n as usize {
            prop_assert_eq!(forward[v], reference[source as usize][v], "forward to {}", v);
            prop_assert_eq!(backward[v], reference[v][source as usize], "backward from {}", v);
        }
    }

    #[test]
    fn bfs_exclusion_never_shortens((n, edges) in arb_graph(), source in 0u32..20, excluded in 0u32..20) {
        prop_assume!(source < n && excluded < n && source != excluded);
        let g = graph_from_edges(n, &edges);
        let plain = distances(&g, source, BfsOptions::default());
        let constrained = distances(
            &g,
            source,
            BfsOptions { excluded: Some(excluded), ..BfsOptions::default() },
        );
        for v in 0..n as usize {
            prop_assert!(constrained[v] >= plain[v], "vertex {}", v);
        }
        prop_assert_eq!(constrained[excluded as usize], INFINITE_DISTANCE);
    }

    #[test]
    fn pll_oracle_matches_floyd_warshall((n, edges) in arb_graph()) {
        let g = graph_from_edges(n, &edges);
        let oracle = DistanceOracle::build(&g);
        let reference = floyd_warshall(n as usize, &edges);
        for s in 0..n {
            for t in 0..n {
                prop_assert_eq!(
                    oracle.distance(s, t),
                    reference[s as usize][t as usize],
                    "d({} -> {})", s, t
                );
            }
        }
    }

    #[test]
    fn reversed_graph_swaps_distances((n, edges) in arb_graph(), s in 0u32..20, t in 0u32..20) {
        prop_assume!(s < n && t < n);
        let g = graph_from_edges(n, &edges);
        let r = g.reversed();
        let forward = distances(&g, s, BfsOptions::default());
        let reverse = distances(&r, t, BfsOptions::default());
        let forward_from_t_in_r = distances(&r, s, BfsOptions::default());
        // d_G(s, t) == d_{G^r}(t, s).
        prop_assert_eq!(forward[t as usize], reverse[s as usize]);
        // And the reverse of the reverse is the original.
        let rr = r.reversed();
        prop_assert_eq!(
            distances(&rr, s, BfsOptions::default())[t as usize],
            forward[t as usize]
        );
        let _ = forward_from_t_in_r;
    }
}

#[test]
fn pll_scales_to_dataset_proxies() {
    // The oracle must stay compact on a realistic heavy-tailed proxy.
    let g = pathenum_repro::workloads::datasets::build("tw").expect("registered");
    let oracle = DistanceOracle::build(&g);
    assert!(
        oracle.average_label_size() < 64.0,
        "labels ballooned: {}",
        oracle.average_label_size()
    );
    // Spot-check a few pairs against BFS.
    for s in [0u32, 7, 99] {
        let reference = distances(&g, s, BfsOptions::default());
        for t in [1u32, 13, 500] {
            assert_eq!(oracle.distance(s, t), reference[t as usize]);
        }
    }
}

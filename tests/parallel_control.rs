//! Cross-thread stopping rules for intra-query parallel enumeration:
//! a `CancelToken` fired mid-run stops every worker and is *reported*
//! as `Termination::Cancelled`; a deadline expiring mid-run reports
//! `Termination::DeadlineExceeded`; and `limit(n)` never over-delivers
//! even when multiple workers emit concurrently.
//!
//! CI runs this file under `--test-threads=1` so the timing-sensitive
//! deadline assertions are not perturbed by sibling tests.

use std::time::{Duration, Instant};

use pathenum_repro::graph::generators::complete_digraph;
use pathenum_repro::prelude::*;

/// A dense graph whose k-hop search space is far too large to exhaust
/// quickly: the mid-run rules below must fire while workers are busy.
fn heavy_graph() -> CsrGraph {
    complete_digraph(15)
}

fn heavy_request() -> QueryRequest<'static> {
    QueryRequest::paths(0, 14).max_hops(8)
}

#[test]
fn cancel_fired_mid_run_stops_all_workers() {
    let graph = heavy_graph();
    let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
    let token = CancelToken::new();
    let trigger = token.clone();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        trigger.cancel();
    });

    let start = Instant::now();
    let response = engine
        .execute(&heavy_request().threads(4).cancel_token(token))
        .expect("valid request");
    let wall = start.elapsed();
    canceller.join().expect("canceller thread exits");

    assert_eq!(response.termination, Termination::Cancelled);
    // The pool observed the token through the probe stride: the run
    // ended within a small multiple of the trigger delay, nowhere near
    // the (effectively unbounded) full enumeration.
    assert!(
        wall < Duration::from_secs(20),
        "cancellation took {wall:?} to propagate"
    );
}

#[test]
fn pre_cancelled_token_stops_before_any_result() {
    let graph = heavy_graph();
    let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
    let token = CancelToken::new();
    token.cancel();
    let response = engine
        .execute(&heavy_request().threads(4).cancel_token(token))
        .expect("valid request");
    assert_eq!(response.termination, Termination::Cancelled);
    assert_eq!(response.num_results(), 0);
}

#[test]
fn deadline_mid_run_is_reported_and_bounded() {
    let graph = heavy_graph();
    let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
    let budget = Duration::from_millis(50);
    let start = Instant::now();
    let response = engine
        .execute(&heavy_request().threads(4).time_budget(budget))
        .expect("valid request");
    let wall = start.elapsed();
    assert_eq!(response.termination, Termination::DeadlineExceeded);
    // Overrun is bounded by the probe stride, not by the search size.
    assert!(
        wall < Duration::from_secs(20),
        "deadline took {wall:?} to propagate"
    );
}

#[test]
fn shared_limit_never_over_delivers_under_concurrency() {
    let graph = complete_digraph(10);
    let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
    // Total result count for q(0, 9, 5) on K10 is far above every limit
    // tried here, so the limit always bites.
    for threads in [2usize, 4, 8] {
        for limit in [1u64, 17, 256, 1000] {
            let response = engine
                .execute(
                    &QueryRequest::paths(0, 9)
                        .max_hops(5)
                        .threads(threads)
                        .limit(limit)
                        .collect_paths(true),
                )
                .expect("valid request");
            assert_eq!(
                response.termination,
                Termination::LimitReached,
                "threads={threads} limit={limit}"
            );
            assert_eq!(response.num_results(), limit, "threads={threads}");
            assert_eq!(response.paths.len() as u64, limit, "threads={threads}");
        }
    }
}

#[test]
fn limit_above_total_completes_with_full_set() {
    let graph = complete_digraph(7);
    let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
    let total = engine
        .execute(&QueryRequest::paths(0, 6).max_hops(4))
        .expect("valid request")
        .num_results();
    let response = engine
        .execute(
            &QueryRequest::paths(0, 6)
                .max_hops(4)
                .threads(4)
                .limit(total + 100),
        )
        .expect("valid request");
    assert_eq!(response.termination, Termination::Completed);
    assert_eq!(response.num_results(), total);
}

#[test]
fn parallel_join_observes_limits_too() {
    let graph = complete_digraph(10);
    let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
    for limit in [1u64, 50] {
        let response = engine
            .execute(
                &QueryRequest::paths(0, 9)
                    .max_hops(5)
                    .method(Method::IdxJoin)
                    .threads(4)
                    .limit(limit)
                    .collect_paths(true),
            )
            .expect("valid request");
        assert_eq!(response.termination, Termination::LimitReached);
        assert_eq!(response.paths.len() as u64, limit);
    }
}

#[test]
fn parallel_join_observes_cancellation() {
    let graph = heavy_graph();
    let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
    let token = CancelToken::new();
    let trigger = token.clone();
    let canceller = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(30));
        trigger.cancel();
    });
    let response = engine
        .execute(
            &heavy_request()
                .method(Method::IdxJoin)
                .threads(4)
                .cancel_token(token),
        )
        .expect("valid request");
    canceller.join().expect("canceller thread exits");
    assert_eq!(response.termination, Termination::Cancelled);
}

#[test]
fn delivered_paths_are_valid_under_early_termination() {
    // Whatever subset survives a tripped limit must still be real
    // simple s-t paths within the hop bound.
    let graph = complete_digraph(9);
    let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
    let response = engine
        .execute(
            &QueryRequest::paths(0, 8)
                .max_hops(4)
                .threads(8)
                .limit(64)
                .collect_paths(true),
        )
        .expect("valid request");
    assert_eq!(response.paths.len(), 64);
    for path in &response.paths {
        assert_eq!(path.first(), Some(&0));
        assert_eq!(path.last(), Some(&8));
        assert!(path.len() <= 5, "at most 4 edges: {path:?}");
        let mut sorted = path.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), path.len(), "simple path: {path:?}");
    }
}

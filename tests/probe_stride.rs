//! The `PathSink::probe` stride contract.
//!
//! Every enumeration kernel must call `probe` periodically *between*
//! emissions — at least once per 64 search-tree nodes (the crate's
//! `PROBE_STRIDE`), with the first node always probing — because the
//! request layer's deadline and cancellation rules are only observable
//! through those calls while a search traverses barren regions. These
//! tests count probes on a silent sink so a future refactor cannot
//! quietly stop polling; if one fails, either restore the probes or
//! consciously renegotiate the stride documented in
//! `crates/pathenum/src/enumerate/mod.rs`.

use pathenum_repro::core::enumerate::{idx_dfs, idx_dfs_iterative, idx_join};
use pathenum_repro::graph::generators::complete_digraph;
use pathenum_repro::prelude::*;

/// The documented upper bound on nodes between probes. Deliberately a
/// literal: the contract is what this test pins.
const PROBE_STRIDE: u64 = 64;

/// Counts emissions and probes without ever stopping the search.
#[derive(Default)]
struct ProbeTally {
    emits: u64,
    probes: u64,
}

impl PathSink for ProbeTally {
    fn emit(&mut self, _path: &[VertexId]) -> SearchControl {
        self.emits += 1;
        SearchControl::Continue
    }

    fn probe(&mut self) -> SearchControl {
        self.probes += 1;
        SearchControl::Continue
    }
}

/// A sink that stops the search at the very first probe — the sharpest
/// form of the "barren searches stay interruptible" guarantee.
struct StopAtFirstProbe {
    emits: u64,
    probes: u64,
}

impl PathSink for StopAtFirstProbe {
    fn emit(&mut self, _path: &[VertexId]) -> SearchControl {
        self.emits += 1;
        SearchControl::Continue
    }

    fn probe(&mut self) -> SearchControl {
        self.probes += 1;
        SearchControl::Stop
    }
}

fn dense_index(n: usize, k: u32) -> Index {
    let g = complete_digraph(n);
    Index::build(&g, Query::new(0, (n - 1) as u32, k).unwrap())
}

#[test]
fn dfs_probes_at_least_once_per_stride() {
    for run in [idx_dfs, idx_dfs_iterative] {
        let index = dense_index(9, 4);
        let mut tally = ProbeTally::default();
        let mut counters = Counters::default();
        run(&index, &mut tally, &mut counters);
        assert!(tally.probes >= 1, "first node always probes");
        // Search-tree nodes visited is partial_results plus the root;
        // one probe per PROBE_STRIDE of them is the floor.
        let nodes = counters.partial_results + 1;
        assert!(
            tally.probes >= nodes / PROBE_STRIDE,
            "{} probes for {} nodes",
            tally.probes,
            nodes
        );
        assert!(tally.emits > 0, "the dense query has results");
    }
}

#[test]
fn join_probes_during_materialization_and_joining() {
    let index = dense_index(9, 4);
    let mut tally = ProbeTally::default();
    let mut counters = Counters::default();
    idx_join(&index, 2, &mut tally, &mut counters);
    assert!(tally.probes >= 1, "first node always probes");
    // The join probes once per side-DFS node and once per joined
    // combination; partial_results counts the side-DFS nodes alone.
    assert!(
        tally.probes >= counters.partial_results / PROBE_STRIDE,
        "{} probes for {} side nodes",
        tally.probes,
        counters.partial_results
    );
}

#[test]
fn first_probe_can_interrupt_before_any_result() {
    // A sink that stops at its first probe sees *zero* emissions from
    // every kernel: the probe fires before any result is offered, so a
    // pre-fired cancellation never pays for a single path.
    let index = dense_index(9, 4);
    for kernel in ["dfs", "dfs_iterative", "join"] {
        let mut sink = StopAtFirstProbe {
            emits: 0,
            probes: 0,
        };
        let mut counters = Counters::default();
        let control = match kernel {
            "dfs" => idx_dfs(&index, &mut sink, &mut counters),
            "dfs_iterative" => idx_dfs_iterative(&index, &mut sink, &mut counters),
            _ => idx_join(&index, 2, &mut sink, &mut counters),
        };
        assert_eq!(control, SearchControl::Stop, "{kernel}");
        assert_eq!(sink.emits, 0, "{kernel} emitted before the first probe");
        assert_eq!(sink.probes, 1, "{kernel} kept searching after Stop");
    }
}

#[test]
fn barren_search_still_probes() {
    // A graph where s reaches t only through one long corridor plus a
    // large barren branch: emissions are rare but probes must not be.
    let mut b = GraphBuilder::new(64);
    // Corridor 0 -> 1 -> 2 -> 3 (t = 3).
    b.add_edges([(0, 1), (1, 2), (2, 3)]).unwrap();
    // Barren clique reachable from s that never reaches t.
    for u in 4..32u32 {
        b.add_edge(0, u).unwrap();
        for v in 4..32u32 {
            if u != v {
                b.add_edge(u, v).unwrap();
            }
        }
    }
    let g = b.finish();
    let index = Index::build(&g, Query::new(0, 3, 3).unwrap());
    let mut tally = ProbeTally::default();
    let mut counters = Counters::default();
    idx_dfs(&index, &mut tally, &mut counters);
    // The barren clique is pruned by the index (distance to t is
    // infinite), so the search is small — but probes still happened.
    assert!(tally.probes >= 1);
    assert_eq!(tally.emits, 1, "exactly the corridor path");
}

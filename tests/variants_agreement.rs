//! Property tests for the extended variants: the iterative DFS, the
//! HPI-style hot index, the YEN-KSP baseline's ordering guarantee, the
//! constraint join variants, and binary IO round-trips.

use proptest::prelude::*;

use pathenum_repro::baselines::hot_index::{hot_index_enumerate, HotIndex};
use pathenum_repro::baselines::yen_ksp;
use pathenum_repro::core::enumerate::{idx_dfs, idx_dfs_iterative};
use pathenum_repro::core::reference::brute_force_paths;
use pathenum_repro::graph::io_binary::{read_binary, write_binary};
use pathenum_repro::prelude::*;

fn graph_from_edges(n: u32, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        if u != v {
            b.add_edge(u, v).expect("in-range edge");
        }
    }
    b.finish()
}

fn arb_graph() -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (4u32..14).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..60);
        (Just(n), edges)
    })
}

fn reference(g: &CsrGraph, q: Query) -> Vec<Vec<VertexId>> {
    let mut sink = CollectingSink::default();
    brute_force_paths(g, q, &mut sink);
    sink.sorted_paths()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn iterative_dfs_matches_recursive_exactly(
        (n, edges) in arb_graph(),
        k in 2u32..7,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let index = Index::build(&g, q);
        let mut recursive_sink = CollectingSink::default();
        let mut recursive_counters = Counters::default();
        idx_dfs(&index, &mut recursive_sink, &mut recursive_counters);
        let mut iterative_sink = CollectingSink::default();
        let mut iterative_counters = Counters::default();
        idx_dfs_iterative(&index, &mut iterative_sink, &mut iterative_counters);
        prop_assert_eq!(recursive_sink.sorted_paths(), iterative_sink.sorted_paths());
        prop_assert_eq!(recursive_counters, iterative_counters);
    }

    #[test]
    fn hot_index_agrees_with_bruteforce(
        (n, edges) in arb_graph(),
        k in 2u32..6,
        hot_tenths in 0u32..=10,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let index = HotIndex::build(&g, f64::from(hot_tenths) / 10.0, k);
        let mut sink = CollectingSink::default();
        hot_index_enumerate(&g, &index, q, &mut sink);
        prop_assert_eq!(sink.sorted_paths(), reference(&g, q));
    }

    #[test]
    fn yen_emits_same_set_in_ascending_length_order(
        (n, edges) in arb_graph(),
        k in 2u32..6,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let mut sink = CollectingSink::default();
        yen_ksp(&g, q, &mut sink);
        let lengths: Vec<usize> = sink.paths.iter().map(Vec::len).collect();
        prop_assert!(lengths.windows(2).all(|w| w[0] <= w[1]), "not ascending: {:?}", lengths);
        prop_assert_eq!(sink.sorted_paths(), reference(&g, q));
    }

    #[test]
    fn constraint_join_variants_match_dfs_variants(
        (n, edges) in arb_graph(),
        k in 2u32..6,
        threshold in 0u64..15,
    ) {
        use pathenum_repro::core::constraints::{accumulative_join, AccumulativeQuery};
        use pathenum_repro::core::constraints::accumulative_dfs;
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let index = Index::build(&g, q);
        let weight = |u: u32, v: u32| u64::from((u ^ v) % 5);
        let acc = AccumulativeQuery {
            identity: 0u64,
            combine: |a, b| a + b,
            weight,
            check: move |&total: &u64| total >= threshold,
            prune: None,
        };
        let mut dfs_sink = CollectingSink::default();
        let mut counters = Counters::default();
        accumulative_dfs(&index, &acc, &mut dfs_sink, &mut counters);
        let expected = dfs_sink.sorted_paths();
        for cut in 1..k {
            let mut join_sink = CollectingSink::default();
            let mut join_counters = Counters::default();
            accumulative_join(&index, cut, &acc, &mut join_sink, &mut join_counters);
            prop_assert_eq!(join_sink.sorted_paths(), expected.clone(), "cut {}", cut);
        }
    }

    #[test]
    fn binary_io_roundtrips_arbitrary_graphs((n, edges) in arb_graph()) {
        let g = graph_from_edges(n, &edges);
        let mut buf = Vec::new();
        write_binary(&g, &mut buf).expect("in-memory write cannot fail");
        let back = read_binary(buf.as_slice()).expect("roundtrip");
        prop_assert_eq!(back.num_vertices(), g.num_vertices());
        prop_assert_eq!(back.edges().collect::<Vec<_>>(), g.edges().collect::<Vec<_>>());
    }

    #[test]
    fn query_engine_agrees_over_query_sequences(
        (n, edges) in arb_graph(),
        targets in proptest::collection::vec(1u32..14, 1..6),
        k in 2u32..6,
    ) {
        let g = graph_from_edges(n, &edges);
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        for t in targets {
            prop_assume!(t < n);
            let Ok(q) = Query::new(0, t, k) else { continue };
            let mut engine_sink = CollectingSink::default();
            engine.run(q, &mut engine_sink).expect("valid");
            prop_assert_eq!(engine_sink.sorted_paths(), reference(&g, q));
        }
    }
}

//! Concurrency soundness of the serving layer: N service workers
//! replaying a shuffled query stream must produce path-for-path the
//! same per-request results as the sequential `QueryEngine` oracle,
//! with shared-cache statistics summing consistently
//! (`hits + misses + bypasses == lookups`) across worker counts
//! {1, 2, 4, 8}.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;

use pathenum_repro::prelude::*;

fn graph_from_edges(n: u32, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        if u != v {
            b.add_edge(u, v).expect("in-range edge");
        }
    }
    b.finish()
}

/// A random digraph plus a shuffled, repetitive target stream: targets
/// are drawn from the small range `1..n`, so the stream naturally
/// contains the repeats a plan cache exists for.
fn arb_instance() -> impl Strategy<Value = (u32, Vec<(u32, u32)>, Vec<u32>)> {
    (4u32..14).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..70);
        let targets = proptest::collection::vec(1..n, 4..24);
        (Just(n), edges, targets)
    })
}

/// The request stream both sides replay: mostly cacheable requests, with
/// every fifth one opting out of the cache so the `bypasses` counter is
/// exercised too.
fn build_requests(targets: &[u32], k: u32) -> Vec<QueryRequest<'static>> {
    targets
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            let request = QueryRequest::paths(0, t).max_hops(k).collect_paths(true);
            if i % 5 == 4 {
                request.bypass_cache()
            } else {
                request
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn workers_replay_a_shuffled_stream_identically_to_the_engine(
        (n, edges, targets) in arb_instance(),
        k in 2u32..6,
    ) {
        let graph = Arc::new(graph_from_edges(n, &edges));

        // Sequential oracle: one engine, same stream, same order.
        let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
        let oracle: Vec<QueryResponse> = build_requests(&targets, k)
            .iter()
            .map(|request| engine.execute(request).expect("valid request"))
            .collect();

        for workers in [1usize, 2, 4, 8] {
            let service = PathEnumService::with_config(
                Arc::clone(&graph),
                PathEnumConfig::default(),
                ServiceConfig { workers, ..ServiceConfig::default() },
            );
            let responses = service.execute_batch(build_requests(&targets, k));
            prop_assert_eq!(responses.len(), oracle.len());
            for (i, (response, expected)) in responses.iter().zip(&oracle).enumerate() {
                let response = response.as_ref().expect("valid request");
                prop_assert_eq!(
                    &response.paths, &expected.paths,
                    "workers={} request {} diverged", workers, i
                );
                prop_assert_eq!(response.num_results(), expected.num_results());
                prop_assert_eq!(response.termination, expected.termination);
            }

            let stats = service.cache_stats();
            prop_assert_eq!(
                stats.hits + stats.misses + stats.bypasses,
                stats.lookups,
                "workers={}: stats must balance", workers
            );
            prop_assert_eq!(stats.lookups, targets.len() as u64);
            prop_assert_eq!(stats.bypasses, (targets.len() / 5) as u64);
            prop_assert_eq!(service.queries_served(), targets.len() as u64);
            prop_assert_eq!(service.queries_rejected(), 0);
            if workers == 1 {
                // A single pool worker is fully sequential: every repeat
                // of a cacheable shape after its first occurrence hits.
                let distinct: std::collections::HashSet<u32> = targets
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % 5 != 4)
                    .map(|(_, &t)| t)
                    .collect();
                let cacheable = targets.len() - targets.len() / 5;
                prop_assert_eq!(stats.hits, (cacheable - distinct.len()) as u64);
            }
        }
    }

    #[test]
    fn limits_deadlines_and_limits_match_the_engine_under_workers(
        (n, edges, targets) in arb_instance(),
        k in 2u32..6,
        limit in 1u64..6,
    ) {
        let graph = Arc::new(graph_from_edges(n, &edges));
        let requests = || -> Vec<QueryRequest<'static>> {
            targets
                .iter()
                .map(|&t| QueryRequest::paths(0, t).max_hops(k).limit(limit).collect_paths(true))
                .collect()
        };
        let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
        let oracle: Vec<QueryResponse> = requests()
            .iter()
            .map(|request| engine.execute(request).expect("valid request"))
            .collect();
        for workers in [2usize, 8] {
            let service = PathEnumService::with_config(
                Arc::clone(&graph),
                PathEnumConfig::default(),
                ServiceConfig { workers, ..ServiceConfig::default() },
            );
            for (response, expected) in service.execute_batch(requests()).iter().zip(&oracle) {
                let response = response.as_ref().expect("valid request");
                prop_assert_eq!(&response.paths, &expected.paths);
                prop_assert_eq!(response.termination, expected.termination);
            }
        }
    }
}

#[test]
fn intra_query_threads_from_a_small_batch_keep_the_sequential_order() {
    // One heavy unbounded request in a 4-worker service gets the whole
    // budget (threads clamp to 4); the parallel merge guarantees the
    // sequential DFS emission order, so even the *order* must match.
    let graph = Arc::new(pathenum_repro::graph::generators::complete_digraph(8));
    let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
    let expected = engine
        .execute(&QueryRequest::paths(0, 7).max_hops(4).collect_paths(true))
        .unwrap();

    let service = PathEnumService::with_config(
        Arc::clone(&graph),
        PathEnumConfig::default(),
        ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        },
    );
    let responses = service.execute_batch(vec![QueryRequest::paths(0, 7)
        .max_hops(4)
        .threads(8)
        .collect_paths(true)]);
    let response = responses[0].as_ref().unwrap();
    assert_eq!(response.plan.unwrap().threads, 4, "budget-clamped");
    assert_eq!(response.paths, expected.paths, "order identical");
}

#[test]
fn ticket_outcomes_report_a_truthful_service_time_envelope() {
    use std::time::Instant;
    // One worker, so the probe must queue behind a heavy blocker. The
    // outcome's `started` stamp is worker pickup, not submission: it has
    // to trail both the submission instant and the blocker's `finished`
    // stamp, and the reported latency (service time only) must fit
    // inside the sojourn the caller observed around submit + wait.
    let graph = Arc::new(pathenum_repro::graph::generators::complete_digraph(9));
    let service = PathEnumService::with_config(
        Arc::clone(&graph),
        PathEnumConfig::default(),
        ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        },
    );
    let blocker = service.submit(QueryRequest::paths(0, 8).max_hops(8).collect_paths(true));
    let submitted_at = Instant::now();
    let probe = service.submit(QueryRequest::paths(0, 1).max_hops(2));

    let blocker_outcome = blocker.wait_outcome();
    let outcome = probe.wait_outcome();
    let sojourn = submitted_at.elapsed();
    assert!(blocker_outcome.response.is_ok());
    assert!(outcome.response.is_ok());

    assert!(
        outcome.started >= submitted_at,
        "pickup cannot precede submission"
    );
    assert!(
        outcome.started >= blocker_outcome.finished,
        "a single worker picks the probe up only after the blocker"
    );
    assert!(outcome.finished >= outcome.started);
    assert_eq!(outcome.latency(), outcome.finished - outcome.started);
    // Queue wait and service time partition the sojourn: together they
    // can never exceed what the caller measured from the outside.
    let queue_wait = outcome.started - submitted_at;
    assert!(
        queue_wait + outcome.latency() <= sojourn,
        "queue wait ({queue_wait:?}) + latency ({:?}) exceeds the \
         observed sojourn ({sojourn:?})",
        outcome.latency()
    );
}

#[test]
fn rejected_requests_never_touch_the_shared_cache() {
    let graph = Arc::new(pathenum_repro::graph::generators::erdos_renyi(30, 160, 4));
    let service = PathEnumService::new(Arc::clone(&graph), PathEnumConfig::default());
    let token = CancelToken::new();
    token.cancel();
    let batch: Vec<QueryRequest<'static>> = vec![
        QueryRequest::paths(0, 1).max_hops(4).cancel_token(token),
        QueryRequest::paths(0, 1)
            .max_hops(4)
            .time_budget(Duration::ZERO),
        QueryRequest::paths(0, 1).max_hops(4).limit(0),
        QueryRequest::paths(0, 1).max_hops(4),
    ];
    let responses = service.execute_batch(batch);
    assert_eq!(
        responses[0].as_ref().unwrap().termination,
        Termination::Cancelled
    );
    assert_eq!(
        responses[1].as_ref().unwrap().termination,
        Termination::DeadlineExceeded
    );
    assert_eq!(
        responses[2].as_ref().unwrap().termination,
        Termination::LimitReached
    );
    for rejected in &responses[..3] {
        assert_eq!(
            rejected.as_ref().unwrap().report.cache,
            CacheOutcome::Skipped
        );
    }
    assert_eq!(
        responses[3].as_ref().unwrap().termination,
        Termination::Completed
    );
    assert_eq!(service.queries_rejected(), 3);
    assert_eq!(service.queries_served(), 1);
    assert_eq!(service.cache_stats().lookups, 1, "only the real request");
}

#[test]
fn constrained_requests_through_the_service_match_the_engine() {
    let graph = Arc::new(pathenum_repro::graph::generators::erdos_renyi(40, 260, 6));
    let service = PathEnumService::new(Arc::clone(&graph), PathEnumConfig::default());
    let mut engine = QueryEngine::new(&graph, PathEnumConfig::default());
    let make = || -> QueryRequest<'static> {
        QueryRequest::paths(0, 1)
            .max_hops(4)
            .predicate(|u, v| (u + v) % 3 != 0)
            .constraint_fingerprint(11)
            .collect_paths(true)
    };
    let expected = engine.execute(&make()).unwrap();
    for response in service.execute_batch(vec![make(), make(), make()]) {
        let response = response.unwrap();
        assert_eq!(response.paths, expected.paths);
        assert_eq!(
            response.plan.unwrap().threads,
            1,
            "constrained requests stay sequential"
        );
    }
    assert!(
        service.cache_stats().hits >= 1,
        "fingerprinted predicate caches"
    );
}

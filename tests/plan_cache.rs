//! Planner/executor split and plan-cache correctness.
//!
//! * `explain()` must describe exactly the plan the engine then executes
//!   (same method, same join cut) — the acceptance contract of the
//!   planner/executor split.
//! * Cached-plan execution must be indistinguishable from cold-plan
//!   execution (same paths, same order, same counts), across methods,
//!   thread counts, and constraint strategies (property-tested).
//! * A warm cache must be measurably faster than replanning per request.

use std::time::{Duration, Instant};

use proptest::prelude::*;

use pathenum_repro::prelude::*;

fn graph_from_edges(n: u32, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        if u != v && u < n && v < n {
            b.add_edge(u, v).expect("in-range edge");
        }
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Acceptance: the plan returned by `explain` is the plan the engine
    /// executes — method and cut agree, for optimizer-chosen and forced
    /// methods alike, cold and warm.
    #[test]
    fn explain_matches_what_the_engine_executes(
        n in 5u32..14,
        edges in proptest::collection::vec((0u32..14, 0u32..14), 5..80),
        k in 2u32..6,
        tau_sel in 0u32..2,
        force_sel in 0u32..3,
    ) {
        let tau = if tau_sel == 0 { 0u64 } else { 100_000u64 };
        let force = match force_sel {
            0 => None,
            1 => Some(Method::IdxDfs),
            _ => Some(Method::IdxJoin),
        };
        let g = graph_from_edges(n, &edges);
        prop_assume!(n >= 2);
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let mut request = QueryRequest::paths(0, 1).max_hops(k).tau(tau);
        if let Some(m) = force {
            request = request.method(m);
        }
        let plan = engine.explain(&request).unwrap();
        for round in 0..2 {
            let response = engine.execute(&request).unwrap();
            prop_assert_eq!(response.report.method, plan.method, "round {}", round);
            prop_assert_eq!(response.report.cut_position, plan.cut, "round {}", round);
            prop_assert_eq!(response.plan.unwrap().method, plan.method);
            prop_assert_eq!(
                response.report.cache,
                CacheOutcome::Hit,
                "explain warmed the cache; round {}",
                round
            );
        }
        if let Some(m) = force {
            prop_assert_eq!(plan.method, m);
        }
    }

    /// Cached-plan execution equals cold-plan execution: identical path
    /// sequence and counts, whatever the method or thread count.
    #[test]
    fn cached_execution_equals_cold_execution(
        n in 5u32..14,
        edges in proptest::collection::vec((0u32..14, 0u32..14), 5..80),
        k in 2u32..6,
        threads_sel in 0u32..2,
    ) {
        let threads = if threads_sel == 0 { 1usize } else { 4usize };
        let g = graph_from_edges(n, &edges);
        let request = || {
            QueryRequest::paths(0, 1)
                .max_hops(k)
                .threads(threads)
                .collect_paths(true)
        };

        let mut caching = QueryEngine::new(&g, PathEnumConfig::default());
        let cold = caching.execute(&request()).unwrap();
        prop_assert_eq!(cold.report.cache, CacheOutcome::Miss);
        let warm = caching.execute(&request()).unwrap();
        prop_assert_eq!(warm.report.cache, CacheOutcome::Hit);

        // Against an engine that never caches.
        let mut uncached = QueryEngine::with_cache(
            &g,
            PathEnumConfig::default(),
            PlanCache::new(0),
        );
        let reference = uncached.execute(&request()).unwrap();
        prop_assert_eq!(reference.report.cache, CacheOutcome::Bypass);

        prop_assert_eq!(&warm.paths, &cold.paths, "warm vs cold path order");
        prop_assert_eq!(&warm.paths, &reference.paths, "cached vs cache-free engine");
        prop_assert_eq!(warm.num_results(), reference.num_results());
        prop_assert_eq!(warm.report.method, reference.report.method);
        prop_assert_eq!(warm.report.cut_position, reference.report.cut_position);
    }

    /// Limits and collected prefixes behave identically warm and cold
    /// (the stopping rules wrap the executor, not the planner).
    #[test]
    fn cached_execution_respects_limits_identically(
        n in 5u32..12,
        edges in proptest::collection::vec((0u32..12, 0u32..12), 10..70),
        k in 3u32..6,
        limit in 1u64..6,
    ) {
        let g = graph_from_edges(n, &edges);
        let request = || {
            QueryRequest::paths(0, 1)
                .max_hops(k)
                .limit(limit)
                .collect_paths(true)
        };
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let cold = engine.execute(&request()).unwrap();
        let warm = engine.execute(&request()).unwrap();
        prop_assert_eq!(cold.termination, warm.termination);
        prop_assert_eq!(&cold.paths, &warm.paths);
        prop_assert_eq!(cold.num_results(), warm.num_results());
    }
}

/// Satellite acceptance: the shared-cache accounting identity
/// `hits + misses + bypasses == lookups` must hold under genuinely
/// concurrent load *and* across `clear_cache()` calls racing the
/// lookups — a clear may evict every entry mid-stream, but it must
/// never lose or double-count a lookup.
#[test]
fn shared_cache_stats_balance_under_concurrent_load_and_clears() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const THREADS: usize = 4;
    const ITERS: usize = 60;
    const SHAPES: u32 = 5;

    let graph = Arc::new(pathenum_graph::generators::erdos_renyi(60, 380, 13));
    let service = Arc::new(PathEnumService::with_config(
        Arc::clone(&graph),
        PathEnumConfig::default(),
        ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    ));

    // One thread hammers `clear_cache` while the submitters run.
    let done = Arc::new(AtomicBool::new(false));
    let clearer = {
        let service = Arc::clone(&service);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut clears = 0u64;
            while !done.load(Ordering::Relaxed) {
                service.clear_cache();
                clears += 1;
                std::thread::yield_now();
            }
            clears
        })
    };
    let submitters: Vec<_> = (0..THREADS)
        .map(|id| {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                for i in 0..ITERS {
                    let t = 1 + ((id + i) as u32 % SHAPES);
                    let request = QueryRequest::paths(0, t).max_hops(3).limit(16);
                    // Every fifth request opts out so `bypasses` is
                    // exercised in the same race.
                    let request = if i % 5 == 4 {
                        request.bypass_cache()
                    } else {
                        request
                    };
                    service.execute(&request).expect("valid request");
                }
            })
        })
        .collect();
    for handle in submitters {
        handle.join().expect("submitter thread");
    }
    done.store(true, Ordering::Relaxed);
    let clears = clearer.join().expect("clearer thread");
    assert!(clears > 0, "the clearer actually raced the lookups");

    let stats = service.cache_stats();
    assert_eq!(
        stats.hits + stats.misses + stats.bypasses,
        stats.lookups,
        "accounting identity under concurrent load + clears: {stats:?}"
    );
    assert_eq!(stats.lookups, (THREADS * ITERS) as u64);
    assert_eq!(stats.bypasses, (THREADS * (ITERS / 5)) as u64);
    assert!(
        stats.misses >= u64::from(SHAPES),
        "each cleared shape replans at least once"
    );

    // The identity keeps holding for traffic after the race quiesced.
    service
        .execute(&QueryRequest::paths(0, 1).max_hops(3).limit(16))
        .expect("valid request");
    let after = service.cache_stats();
    assert_eq!(after.hits + after.misses + after.bypasses, after.lookups);
    assert_eq!(after.lookups, stats.lookups + 1);
}

#[test]
fn explain_reports_modeled_costs_when_the_optimizer_runs() {
    let g = pathenum_graph::generators::complete_digraph(10);
    let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
    // tau = 0 forces the full estimator + Algorithm 5.
    let plan = engine
        .explain(&QueryRequest::paths(0, 9).max_hops(5).tau(0))
        .unwrap();
    let t_dfs = plan.t_dfs.expect("optimizer ran");
    let t_join = plan.t_join.expect("optimizer ran");
    let walks = plan.full_estimate.expect("optimizer ran");
    assert!(t_dfs >= walks, "DFS cost includes the final level");
    assert!(t_join >= walks, "join cost includes materializing |Q|");
    match plan.method {
        Method::IdxDfs => assert!(t_dfs <= t_join),
        Method::IdxJoin => assert!(t_join < t_dfs),
    }
    // The rendered EXPLAIN mentions the numbers.
    let text = plan.to_string();
    assert!(text.contains(&format!("t_dfs={t_dfs}")), "{text}");
    assert!(text.contains(&format!("walks={walks}")), "{text}");
}

/// Acceptance: a repeated query is strictly faster against a warm cache
/// than against a cache-free engine, with identical enumerated output.
///
/// The gap this measures is the per-request boundary BFS + index build
/// (hundreds of microseconds on this graph) against a hash-map lookup
/// (sub-microsecond), summed over enough repeats to drown scheduler
/// noise; a strict comparison of total wall-clock is therefore robust.
#[test]
fn warm_cache_is_strictly_faster_with_identical_output() {
    use pathenum_graph::generators::{power_law, PowerLawConfig};
    let graph = power_law(PowerLawConfig::social(20_000, 6, 77));
    let queries = pathenum_repro::workloads::generate_queries(
        &graph,
        pathenum_repro::workloads::QueryGenConfig::paper_default(6, 4, 7),
    );
    const REPEATS: usize = 12;

    let run = |engine: &mut QueryEngine<'_>| -> (Duration, Vec<u64>) {
        let mut results = Vec::new();
        let start = Instant::now();
        for _ in 0..REPEATS {
            for &q in &queries {
                let response = engine
                    .execute(&QueryRequest::from_query(q).limit(500))
                    .expect("generated queries are valid");
                results.push(response.num_results());
            }
        }
        (start.elapsed(), results)
    };

    let mut cold_engine =
        QueryEngine::with_cache(&graph, PathEnumConfig::default(), PlanCache::new(0));
    let (cold_wall, cold_results) = run(&mut cold_engine);
    let mut warm_engine = QueryEngine::new(&graph, PathEnumConfig::default());
    let (warm_wall, warm_results) = run(&mut warm_engine);

    assert_eq!(cold_results, warm_results, "caching changed the output");
    let stats = warm_engine.cache_stats();
    assert_eq!(stats.misses, queries.len() as u64);
    assert_eq!(stats.hits, (queries.len() * (REPEATS - 1)) as u64);
    assert!(
        warm_wall < cold_wall,
        "warm ({warm_wall:?}) must be strictly below cold ({cold_wall:?})"
    );
}

#[test]
fn lru_eviction_keeps_the_cache_bounded() {
    let g = pathenum_graph::generators::erdos_renyi(40, 240, 3);
    let mut engine = QueryEngine::with_cache(&g, PathEnumConfig::default(), PlanCache::new(2));
    for t in 1..6u32 {
        engine
            .execute(&QueryRequest::paths(0, t).max_hops(4))
            .unwrap();
    }
    assert_eq!(engine.plan_cache().len(), 2);
    assert_eq!(engine.cache_stats().evictions, 3);
    // The most recent query is still warm.
    let response = engine
        .execute(&QueryRequest::paths(0, 5).max_hops(4))
        .unwrap();
    assert_eq!(response.report.cache, CacheOutcome::Hit);
}

#[test]
fn distinct_settings_never_share_plan_entries() {
    let g = pathenum_graph::generators::erdos_renyi(40, 260, 9);
    let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
    let base = || QueryRequest::paths(0, 1).max_hops(4);
    engine.execute(&base()).unwrap();
    // Different tau, forced method, or k each replan (Miss), never reuse
    // the optimizer-default entry.
    for request in [
        base().tau(0),
        base().method(Method::IdxJoin),
        QueryRequest::paths(0, 1).max_hops(5),
    ] {
        let response = engine.execute(&request).unwrap();
        assert_eq!(response.report.cache, CacheOutcome::Miss, "{request:?}");
    }
    // And the original is still warm.
    let response = engine.execute(&base()).unwrap();
    assert_eq!(response.report.cache, CacheOutcome::Hit);
}

#[test]
fn warm_hits_report_lookup_time_not_index_build() {
    // Regression for the cache-hit timing misattribution: hit responses
    // used to report the lookup wall-time under `index_build`, skewing
    // every phase table built on warm streams. A hit must leave
    // `index_build` (and the other build phases) at zero, carry the
    // lookup under the dedicated `cache_lookup` field, and still account
    // for it in `total()`/`preprocessing()`.
    let g = pathenum_graph::generators::erdos_renyi(60, 380, 27);
    let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
    let request = QueryRequest::paths(0, 1).max_hops(4);

    let cold = engine.execute(&request).unwrap();
    assert_eq!(cold.report.cache, CacheOutcome::Miss);
    assert_eq!(cold.report.timings.cache_lookup, Duration::ZERO);
    assert!(cold.report.timings.index_build > Duration::ZERO);

    let warm = engine.execute(&request).unwrap();
    assert_eq!(warm.report.cache, CacheOutcome::Hit);
    let timings = &warm.report.timings;
    assert_eq!(timings.index_build, Duration::ZERO, "no build ran");
    assert_eq!(timings.bfs, Duration::ZERO);
    assert_eq!(timings.preliminary_estimation, Duration::ZERO);
    assert_eq!(timings.optimization, Duration::ZERO);
    assert_eq!(
        timings.total(),
        timings.cache_lookup + timings.enumeration,
        "the lookup is accounted for in the total"
    );
    assert_eq!(timings.preprocessing(), timings.cache_lookup);

    // The dynamic engine's warm path (including surgical retention) uses
    // the same attribution.
    let dynamic = DynamicGraph::new(g.clone());
    let mut engine = DynamicEngine::new(&dynamic, PathEnumConfig::default());
    engine.execute(&request).unwrap();
    let warm = engine.execute(&request).unwrap();
    assert_eq!(warm.report.cache, CacheOutcome::Hit);
    assert_eq!(warm.report.timings.index_build, Duration::ZERO);
    assert_eq!(
        warm.report.timings.preprocessing(),
        warm.report.timings.cache_lookup
    );
}

//! Kernel-differential suite: every optimized hot-path kernel is pinned
//! against a retained naive oracle.
//!
//! The production kernels (epoch-stamped boundary BFS, the iterative
//! IDX-DFS, the arena-backed word-parallel IDX-JOIN) must be
//! *byte-identical* to their straightforward counterparts — same paths in
//! the same emission order, same [`Counters`] — on arbitrary graphs. The
//! suite also pins the `NeighborAccess` ascending-order contract that the
//! byte-identical guarantee is built on, and the zero-allocation
//! steady-state of the per-thread scratch arena.

use std::collections::VecDeque;

use proptest::prelude::*;

use pathenum_repro::core::enumerate::kernels::{
    intersect_bitset, intersect_gallop, intersect_sorted, BlockBits, DENSE_UNIVERSE,
};
use pathenum_repro::core::enumerate::{
    idx_dfs, idx_dfs_iterative, idx_join, idx_join_reference, thread_scratch_heap_bytes,
};
use pathenum_repro::graph::bfs::{distances_epoch_into, distances_into, BfsOptions, Direction};
use pathenum_repro::graph::generators::{erdos_renyi, power_law, PowerLawConfig};
use pathenum_repro::graph::types::Distance;
use pathenum_repro::graph::{EpochMap, INFINITE_DISTANCE};
use pathenum_repro::prelude::*;

/// Builds a graph from a raw edge list, ignoring self-loops.
fn graph_from_edges(n: u32, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        if u != v {
            b.add_edge(u, v).expect("in-range edge");
        }
    }
    b.finish()
}

fn arb_graph() -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (4u32..16).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..80);
        (Just(n), edges)
    })
}

/// Runs `kernel` into a fresh [`CollectingSink`], returning the emitted
/// paths in emission order together with the counters.
fn run_kernel(
    kernel: impl FnOnce(&mut dyn PathSink, &mut Counters) -> SearchControl,
) -> (Vec<Vec<VertexId>>, Counters) {
    let mut sink = CollectingSink::default();
    let mut counters = Counters::default();
    kernel(&mut sink, &mut counters);
    (sink.paths, counters)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Epoch-stamped BFS must report exactly the distances of the
    /// plain flat-`Vec` oracle, for both directions, with and without
    /// an excluded vertex and a depth bound — reusing ONE `EpochMap`
    /// across every case so stale stamps from a previous query would
    /// be caught.
    #[test]
    fn epoch_bfs_matches_flat_map_oracle(
        (n, edges) in arb_graph(),
        source in 0u32..16,
        // The vendored proptest stub has no Option/bool strategies, so
        // wider integer ranges encode "sometimes absent" and direction.
        excluded in 0u32..32,
        max_depth in 0u32..12,
        backward in 0u32..2,
    ) {
        let g = graph_from_edges(n, &edges);
        let source = source % n;
        let options = BfsOptions {
            direction: if backward == 1 { Direction::Backward } else { Direction::Forward },
            excluded: (excluded < 16).then_some(excluded % n),
            max_depth: (max_depth < 6).then_some(max_depth),
        };
        let mut naive: Vec<Distance> = Vec::new();
        let mut queue = VecDeque::new();
        distances_into(&g, source, options, &mut naive, &mut queue);

        // Deliberately warm: the map carries stamps from prior proptest
        // cases, exactly like the per-query reuse in the index build.
        let mut epoch = EpochMap::new(INFINITE_DISTANCE);
        // Pollute the map with a different traversal first, then rerun.
        distances_epoch_into(&g, (source + 1) % n, BfsOptions::default(), &mut epoch, &mut queue);
        distances_epoch_into(&g, source, options, &mut epoch, &mut queue);

        for (v, &expected) in naive.iter().enumerate() {
            prop_assert_eq!(
                epoch.get(v),
                expected,
                "distance mismatch at v={} (source={}, options={:?})",
                v, source, options
            );
        }
        // Every finite distance must be on the touched list.
        let mut touched: Vec<u32> = epoch.touched().to_vec();
        touched.sort_unstable();
        for (v, &expected) in naive.iter().enumerate() {
            if expected != INFINITE_DISTANCE {
                prop_assert!(touched.binary_search(&(v as u32)).is_ok());
            }
        }
    }

    /// The three set-intersection kernels behind the join's
    /// cross-disjointness check agree on arbitrary sorted inputs.
    #[test]
    fn intersection_kernels_agree(
        mut a in proptest::collection::vec(0u32..DENSE_UNIVERSE as u32, 0..48),
        mut b in proptest::collection::vec(0u32..DENSE_UNIVERSE as u32, 0..48),
    ) {
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        let mut expected = Vec::new();
        intersect_sorted(&a, &b, &mut expected);

        let mut gallop = Vec::new();
        intersect_gallop(&a, &b, &mut gallop);
        prop_assert_eq!(&gallop, &expected, "gallop disagrees on {:?} ∩ {:?}", &a, &b);

        let mut bits = BlockBits::default();
        let mut dense = Vec::new();
        intersect_bitset(&a, &b, DENSE_UNIVERSE, &mut bits, &mut dense);
        prop_assert_eq!(&dense, &expected, "bitset disagrees on {:?} ∩ {:?}", &a, &b);
    }

    /// The iterative DFS kernel is byte-identical to the recursive
    /// oracle: same paths in the same emission order, same counters.
    #[test]
    fn iterative_dfs_matches_recursive_oracle(
        (n, edges) in arb_graph(),
        k in 2u32..7,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let index = Index::build(&g, q);
        let (ref_paths, ref_counters) = run_kernel(|sink, c| idx_dfs(&index, sink, c));
        let (opt_paths, opt_counters) =
            run_kernel(|sink, c| idx_dfs_iterative(&index, sink, c));
        prop_assert_eq!(opt_paths, ref_paths, "paths diverge on n={} k={}", n, k);
        prop_assert_eq!(opt_counters, ref_counters, "counters diverge on n={} k={}", n, k);
    }

    /// The arena-backed word-parallel join is byte-identical to the
    /// hash-bucket reference at every cut position.
    #[test]
    fn optimized_join_matches_reference_oracle(
        (n, edges) in arb_graph(),
        k in 2u32..7,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let index = Index::build(&g, q);
        for cut in 1..k {
            let (ref_paths, ref_counters) =
                run_kernel(|sink, c| idx_join_reference(&index, cut, sink, c));
            let (opt_paths, opt_counters) =
                run_kernel(|sink, c| idx_join(&index, cut, sink, c));
            prop_assert_eq!(opt_paths, ref_paths, "paths diverge on n={} k={} cut={}", n, k, cut);
            prop_assert_eq!(
                opt_counters, ref_counters,
                "counters diverge on n={} k={} cut={}", n, k, cut
            );
        }
    }

    /// `CsrGraph` honors the `NeighborAccess` ascending-order contract
    /// the deterministic emission order is built on.
    #[test]
    fn csr_neighbor_order_is_strictly_ascending(
        (n, edges) in arb_graph(),
    ) {
        let g = graph_from_edges(n, &edges);
        assert_strictly_ascending(&g);
    }

    /// `OverlayView` honors the same contract after arbitrary edge
    /// insertions and removals on top of the base CSR.
    #[test]
    fn overlay_neighbor_order_is_strictly_ascending(
        (n, edges) in arb_graph(),
        inserts in proptest::collection::vec((0u32..16, 0u32..16), 0..24),
        removes in proptest::collection::vec((0u32..16, 0u32..16), 0..24),
    ) {
        let g = graph_from_edges(n, &edges);
        let mut dynamic = DynamicGraph::new(g);
        for &(u, v) in &inserts {
            dynamic.insert_edge(u % n, v % n);
        }
        for &(u, v) in &removes {
            dynamic.remove_edge(u % n, v % n);
        }
        assert_strictly_ascending(&dynamic.view());
    }
}

/// Checks `for_each_out` / `for_each_in` yield strictly ascending ids.
fn assert_strictly_ascending<G: NeighborAccess>(g: &G) {
    for v in 0..g.num_vertices() as VertexId {
        let mut prev_out: Option<VertexId> = None;
        g.for_each_out(v, |w| {
            assert!(
                prev_out.is_none_or(|p| p < w),
                "out-neighbors of {v} not strictly ascending at {w}"
            );
            prev_out = Some(w);
        });
        let mut prev_in: Option<VertexId> = None;
        g.for_each_in(v, |w| {
            assert!(
                prev_in.is_none_or(|p| p < w),
                "in-neighbors of {v} not strictly ascending at {w}"
            );
            prev_in = Some(w);
        });
    }
}

/// Deterministic ER + power-law graphs used by the end-to-end checks.
fn workload_graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("erdos_renyi", erdos_renyi(300, 1800, 7)),
        ("power_law", power_law(PowerLawConfig::social(400, 5, 13))),
    ]
}

/// End-to-end differential: for both generated workloads and both forced
/// methods, the engine must return the same result set at `threads = 1`
/// and `threads = 4`, and that set must match the recursive-DFS oracle on
/// the same per-query index.
#[test]
fn engine_agrees_across_methods_and_thread_counts() {
    for (name, g) in workload_graphs() {
        let n = g.num_vertices() as VertexId;
        let queries = [(0, n / 2, 4u32), (1, n - 1, 4), (2, n / 3, 3)];
        for &(s, t, k) in &queries {
            let q = Query::new(s, t, k).expect("valid");
            let index = Index::build(&g, q);
            let (mut oracle, _) = run_kernel(|sink, c| idx_dfs(&index, sink, c));
            oracle.sort_unstable();
            for method in [Method::IdxDfs, Method::IdxJoin] {
                let mut single: Option<Vec<Vec<VertexId>>> = None;
                for threads in [1usize, 4] {
                    let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
                    let response = engine
                        .execute(
                            &QueryRequest::paths(s, t)
                                .max_hops(k)
                                .method(method)
                                .threads(threads)
                                .collect_paths(true),
                        )
                        .expect("valid request");
                    let mut paths = response.paths;
                    paths.sort_unstable();
                    assert_eq!(
                        paths, oracle,
                        "{name}: {method} threads={threads} disagrees with the DFS \
                         oracle on ({s},{t},k={k})"
                    );
                    match &single {
                        None => single = Some(paths),
                        Some(reference) => assert_eq!(
                            &paths, reference,
                            "{name}: {method} differs between thread counts on ({s},{t},k={k})"
                        ),
                    }
                }
            }
        }
    }
}

/// A warm query served from the reused thread-local arena returns exactly
/// what a fresh-allocation run (on a brand-new thread, hence a brand-new
/// arena) returns — paths and counters.
#[test]
fn arena_reuse_matches_fresh_allocation_run() {
    let g = power_law(PowerLawConfig::social(300, 5, 21));
    let q = Query::new(0, 150, 4).expect("valid");
    let index = Index::build(&g, q);

    // Warm this thread's arena, then take the measured run.
    let (_, _) = run_kernel(|sink, c| idx_join(&index, 2, sink, c));
    let (warm_join, warm_join_counters) = run_kernel(|sink, c| idx_join(&index, 2, sink, c));
    let (warm_dfs, warm_dfs_counters) = run_kernel(|sink, c| idx_dfs_iterative(&index, sink, c));

    let (fresh_join, fresh_join_counters, fresh_dfs, fresh_dfs_counters) =
        std::thread::scope(|scope| {
            scope
                .spawn(|| {
                    let (jp, jc) = run_kernel(|sink, c| idx_join(&index, 2, sink, c));
                    let (dp, dc) = run_kernel(|sink, c| idx_dfs_iterative(&index, sink, c));
                    (jp, jc, dp, dc)
                })
                .join()
                .expect("fresh-arena thread")
        });

    assert!(!warm_join.is_empty(), "workload should produce paths");
    assert_eq!(warm_join, fresh_join);
    assert_eq!(warm_join_counters, fresh_join_counters);
    assert_eq!(warm_dfs, fresh_dfs);
    assert_eq!(warm_dfs_counters, fresh_dfs_counters);
}

/// Regression guard for the scratch arena: once a query has been served
/// warm, repeating the *same* query must not grow the arena at all —
/// the steady state allocates nothing in the enumeration core.
#[test]
fn warm_queries_do_not_grow_the_scratch_arena() {
    let g = erdos_renyi(400, 2400, 11);
    let q = Query::new(0, 200, 4).expect("valid");
    let index = Index::build(&g, q);

    // Two warm-up rounds: the first sizes the arena, the second settles
    // any growth-on-first-reuse effects (e.g. Vec doubling).
    for _ in 0..2 {
        let (paths, _) = run_kernel(|sink, c| idx_join(&index, 2, sink, c));
        assert!(!paths.is_empty(), "workload should produce paths");
        run_kernel(|sink, c| idx_dfs_iterative(&index, sink, c));
    }

    let settled = thread_scratch_heap_bytes();
    assert!(settled > 0, "arena should own warm scratch memory");
    for rep in 0..10 {
        run_kernel(|sink, c| idx_join(&index, 2, sink, c));
        run_kernel(|sink, c| idx_dfs_iterative(&index, sink, c));
        let now = thread_scratch_heap_bytes();
        assert_eq!(
            now, settled,
            "arena grew from {settled} to {now} bytes on warm repetition {rep}"
        );
    }
}

//! Property tests for the join executor and the plan spectrum: every cut
//! position of IDX-JOIN and every left-deep plan must produce exactly
//! the IDX-DFS result set, and the relations-based evaluation (Theorem
//! 3.1) must agree too.

use proptest::prelude::*;

use pathenum_repro::core::enumerate::{idx_dfs, idx_join};
use pathenum_repro::core::relations::Relations;
use pathenum_repro::core::spectrum::{all_left_deep_plans, execute_left_deep};
use pathenum_repro::prelude::*;

fn graph_from_edges(n: u32, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        if u != v {
            b.add_edge(u, v).expect("in-range edge");
        }
    }
    b.finish()
}

fn arb_graph() -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (4u32..12).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..50);
        (Just(n), edges)
    })
}

fn dfs_paths(index: &Index) -> Vec<Vec<VertexId>> {
    let mut sink = CollectingSink::default();
    let mut counters = Counters::default();
    idx_dfs(index, &mut sink, &mut counters);
    sink.sorted_paths()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_cut_position_agrees_with_dfs(
        (n, edges) in arb_graph(),
        k in 2u32..6,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let index = Index::build(&g, q);
        let expected = dfs_paths(&index);
        for cut in 1..k {
            let mut sink = CollectingSink::default();
            let mut counters = Counters::default();
            idx_join(&index, cut, &mut sink, &mut counters);
            prop_assert_eq!(sink.sorted_paths(), expected.clone(), "cut {}", cut);
        }
    }

    #[test]
    fn every_left_deep_plan_agrees_with_dfs(
        (n, edges) in arb_graph(),
        k in 2u32..5,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let index = Index::build(&g, q);
        let expected = dfs_paths(&index);
        for plan in all_left_deep_plans(k) {
            let mut sink = CollectingSink::default();
            let mut counters = Counters::default();
            execute_left_deep(&index, &plan, &mut sink, &mut counters);
            prop_assert_eq!(
                sink.sorted_paths(), expected.clone(),
                "plan {:?}", plan
            );
        }
    }

    #[test]
    fn relations_evaluation_agrees_with_dfs(
        (n, edges) in arb_graph(),
        k in 2u32..5,
    ) {
        // Theorem 3.1 end-to-end: evaluating the (reduced) chain join and
        // filtering duplicate-vertex tuples yields P(s, t, k, G).
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let index = Index::build(&g, q);
        let expected = dfs_paths(&index);
        let rel = Relations::build_reduced(&g, q);
        let mut sink = CollectingSink::default();
        rel.evaluate(&mut sink);
        prop_assert_eq!(sink.sorted_paths(), expected);
    }

    #[test]
    fn join_respects_early_stop(
        (n, edges) in arb_graph(),
        k in 2u32..6,
        limit in 1u64..5,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let index = Index::build(&g, q);
        let total = dfs_paths(&index).len() as u64;
        let mut sink = ControlledSink::new(CountingSink::default(), Some(limit), None, None);
        let mut counters = Counters::default();
        idx_join(&index, (k / 2).max(1).min(k - 1), &mut sink, &mut counters);
        prop_assert_eq!(sink.emitted(), total.min(limit));
    }
}

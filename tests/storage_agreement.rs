//! Storage representations must be indistinguishable from the heap CSR
//! graph: for random graphs, a [`FrozenGraph`] loaded from a `PEG2`
//! image (raw or varint-compressed) serves *identical* adjacency — same
//! neighbors, same strictly ascending order, same degrees — which is
//! what makes enumeration results byte-identical across
//! representations. Compressed cache footprints ([`CompactBits`]) must
//! agree with the dense oracle ([`DenseBits`]) on every membership
//! decision a retention check could make, and corrupted or truncated
//! serialized streams must fail loudly (or, where a format carries no
//! checksum for a region, at worst round-trip to a graph — never
//! panic).

use proptest::prelude::*;

use pathenum_repro::graph::io_binary::{read_binary, read_frozen, write_binary, write_frozen};
use pathenum_repro::prelude::*;

fn graph_from_edges(n: u32, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        if u != v && u < n && v < n {
            b.add_edge(u, v).expect("in-range edge");
        }
    }
    b.finish()
}

fn frozen_from(graph: &CsrGraph, compress: bool) -> FrozenGraph {
    let mut image = Vec::new();
    write_frozen(graph, compress, &mut image).expect("in-memory write");
    read_frozen(image.as_slice()).expect("round trip")
}

fn out_row(g: &impl NeighborAccess, v: VertexId) -> Vec<VertexId> {
    let mut row = Vec::new();
    g.for_each_out(v, |n| row.push(n));
    row
}

fn in_row(g: &impl NeighborAccess, v: VertexId) -> Vec<VertexId> {
    let mut row = Vec::new();
    g.for_each_in(v, |n| row.push(n));
    row
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Adjacency identity across representations, including the
    /// iteration-order contract every deterministic-results guarantee
    /// rests on: rows come out strictly ascending, identically, from
    /// the heap CSR, the raw frozen image, and the compressed one.
    #[test]
    fn frozen_adjacency_is_identical_and_strictly_ascending(
        n in 1u32..40,
        edges in proptest::collection::vec((0u32..40, 0u32..40), 0..200),
        compress_raw in 0u8..2,
    ) {
        let graph = graph_from_edges(n, &edges);
        let frozen = frozen_from(&graph, compress_raw == 1);
        prop_assert_eq!(frozen.num_vertices(), graph.num_vertices());
        prop_assert_eq!(frozen.num_edges(), graph.num_edges());
        for v in 0..n {
            let out = out_row(&frozen, v);
            let inn = in_row(&frozen, v);
            prop_assert_eq!(&out, &out_row(&graph, v).to_vec(), "out row of {}", v);
            prop_assert_eq!(&inn, &in_row(&graph, v).to_vec(), "in row of {}", v);
            prop_assert!(out.windows(2).all(|w| w[0] < w[1]), "out row of {} ascends", v);
            prop_assert!(inn.windows(2).all(|w| w[0] < w[1]), "in row of {} ascends", v);
            prop_assert_eq!(frozen.out_degree(v), graph.out_degree(v));
            prop_assert_eq!(frozen.in_degree(v), graph.in_degree(v));
            for w in 0..n {
                prop_assert_eq!(frozen.has_edge(v, w), graph.has_edge(v, w));
            }
        }
    }

    /// [`GraphHandle`] dispatch preserves the same identity for every
    /// representation a catalog can register.
    #[test]
    fn graph_handle_dispatch_matches_inner_representation(
        n in 1u32..25,
        edges in proptest::collection::vec((0u32..25, 0u32..25), 0..120),
    ) {
        let graph = graph_from_edges(n, &edges);
        let handles = [
            GraphHandle::from(graph.clone()),
            GraphHandle::from(frozen_from(&graph, false)),
            GraphHandle::from(frozen_from(&graph, true)),
            GraphHandle::from(DynamicGraph::new(graph.clone())),
        ];
        for handle in &handles {
            prop_assert_eq!(handle.num_edges(), graph.num_edges());
            for v in 0..n {
                prop_assert_eq!(
                    out_row(handle, v),
                    out_row(&graph, v),
                    "{} out row of {}", handle.representation(), v
                );
                prop_assert_eq!(
                    in_row(handle, v),
                    in_row(&graph, v),
                    "{} in row of {}", handle.representation(), v
                );
            }
        }
    }

    /// Footprint decision equivalence under mutation streams: every
    /// membership decision the cache-retention checks derive from a
    /// reach set — `contains(u)`, `contains(u) && contains(w)` — is
    /// identical between the compressed set and the dense oracle, for
    /// arbitrary build sets and arbitrary probe streams.
    #[test]
    fn compact_footprints_decide_like_the_dense_oracle(
        mut ids in proptest::collection::vec(0u32..200_000, 0..400),
        probes in proptest::collection::vec((0u32..200_000, 0u32..200_000), 0..200),
    ) {
        let compact = CompactBits::from_ids(&mut ids);
        let mut dense = DenseBits::default();
        for &v in &ids {
            dense.insert(v);
        }
        prop_assert_eq!(compact.cardinality(), ids.len());
        for &(u, w) in &probes {
            prop_assert_eq!(compact.contains(u), dense.contains(u), "contains({})", u);
            // The removal-retention decision shape: both endpoints.
            prop_assert_eq!(
                compact.contains(u) && compact.contains(w),
                dense.contains(u) && dense.contains(w),
                "removal decision ({}, {})", u, w
            );
        }
        for &v in &ids {
            prop_assert!(compact.contains(v), "member {}", v);
        }
    }

    /// Corrupt-stream fuzzing, `PEG2`: flipping any single byte of a
    /// serialized image either fails the load (checksum or structural
    /// validation) or — only where the flip cannot change meaning —
    /// yields a graph with identical adjacency. Never a panic, never a
    /// silently different graph.
    #[test]
    fn peg2_byte_flips_never_yield_a_different_graph(
        n in 1u32..20,
        edges in proptest::collection::vec((0u32..20, 0u32..20), 0..60),
        compress_raw in 0u8..2,
        flip_pos in 0usize..4096,
        flip_bit in 0u8..8,
    ) {
        let graph = graph_from_edges(n, &edges);
        let mut image = Vec::new();
        write_frozen(&graph, compress_raw == 1, &mut image).expect("in-memory write");
        let pos = flip_pos % image.len();
        image[pos] ^= 1 << flip_bit;
        if let Ok(frozen) = read_frozen(image.as_slice()) {
            prop_assert_eq!(frozen.num_vertices(), graph.num_vertices());
            prop_assert_eq!(frozen.num_edges(), graph.num_edges());
            for v in 0..n {
                prop_assert_eq!(out_row(&frozen, v), out_row(&graph, v), "out row of {}", v);
                prop_assert_eq!(in_row(&frozen, v), in_row(&graph, v), "in row of {}", v);
            }
        }
    }

    /// Corrupt-stream fuzzing, truncation: a prefix of a serialized
    /// stream is an error for both formats — `PEG1` (the claimed edge
    /// count outruns the bytes) and `PEG2` (section table outruns the
    /// buffer) — never a panic, never a partial graph.
    #[test]
    fn truncated_streams_fail_loudly_in_both_formats(
        n in 1u32..20,
        edges in proptest::collection::vec((0u32..20, 0u32..20), 1..60),
        cut in 0usize..4096,
    ) {
        let graph = graph_from_edges(n, &edges);
        prop_assume!(graph.num_edges() > 0);

        let mut peg1 = Vec::new();
        write_binary(&graph, &mut peg1).expect("in-memory write");
        let cut1 = cut % peg1.len();
        prop_assert!(read_binary(&peg1[..cut1]).is_err(), "PEG1 cut at {}", cut1);

        let mut peg2 = Vec::new();
        write_frozen(&graph, false, &mut peg2).expect("in-memory write");
        let cut2 = cut % peg2.len();
        prop_assert!(read_frozen(&peg2[..cut2]).is_err(), "PEG2 cut at {}", cut2);
    }
}

//! Overlay execution must be indistinguishable from snapshot execution:
//! for random graphs and random update streams, a [`DynamicEngine`]
//! answering on the live overlay returns *path-for-path* identical
//! results (same set, same order) to a [`QueryEngine`] answering on
//! `snapshot()`, across enumeration methods, result limits, and thread
//! counts — and a plan cache carried across mutations (surgical
//! retention) never changes any answer.

use proptest::prelude::*;

use pathenum_repro::prelude::*;

fn graph_from_edges(n: u32, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        if u != v && u < n && v < n {
            b.add_edge(u, v).expect("in-range edge");
        }
    }
    b.finish()
}

fn apply_updates(dynamic: &mut DynamicGraph, n: u32, updates: &[(u32, u32, u32)]) {
    for &(u, v, op) in updates {
        if u >= n || v >= n {
            continue;
        }
        if op == 0 {
            dynamic.remove_edge(u, v);
        } else {
            dynamic.insert_edge(u, v);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The acceptance matrix: methods (optimizer / forced DFS / forced
    /// JOIN) x limits (none / tight) x threads {1, 4}, on a mutated
    /// overlay vs its snapshot.
    #[test]
    fn overlay_equals_snapshot_across_methods_limits_threads(
        n in 5u32..14,
        base in proptest::collection::vec((0u32..14, 0u32..14), 0..60),
        updates in proptest::collection::vec((0u32..14, 0u32..14, 0u32..3), 0..30),
        k in 2u32..6,
    ) {
        let mut dynamic = DynamicGraph::new(graph_from_edges(n, &base));
        apply_updates(&mut dynamic, n, &updates);
        let snapshot = dynamic.snapshot();
        prop_assert_eq!(snapshot.num_edges(), dynamic.num_edges());

        let methods = [None, Some(Method::IdxDfs), Some(Method::IdxJoin)];
        let limits = [None, Some(3u64)];
        for (s, t) in [(0u32, 1u32), (1, n - 1)] {
            // The full result set (method-independent), for the subset
            // check on limited parallel runs.
            let full: Vec<Vec<u32>> = {
                let mut engine = DynamicEngine::new(&dynamic, PathEnumConfig::default());
                engine
                    .execute(&QueryRequest::paths(s, t).max_hops(k).collect_paths(true))
                    .expect("valid query")
                    .paths
            };
            for method in methods {
                for limit in limits {
                    for threads in [1usize, 4] {
                        let request = || {
                            let mut r = QueryRequest::paths(s, t)
                                .max_hops(k)
                                .threads(threads)
                                .collect_paths(true);
                            if let Some(m) = method {
                                r = r.method(m);
                            }
                            if let Some(l) = limit {
                                r = r.limit(l);
                            }
                            r
                        };
                        let mut overlay_engine =
                            DynamicEngine::new(&dynamic, PathEnumConfig::default());
                        let from_overlay =
                            overlay_engine.execute(&request()).expect("valid query");
                        let mut snapshot_engine =
                            QueryEngine::new(&snapshot, PathEnumConfig::default());
                        let from_snapshot =
                            snapshot_engine.execute(&request()).expect("valid query");
                        if limit.is_some() && threads > 1 {
                            // A limited parallel run delivers a
                            // scheduling-dependent *subset*; only the
                            // count is contractually deterministic.
                            // Both executions must deliver the right
                            // number of genuine results.
                            for paths in [&from_overlay.paths, &from_snapshot.paths] {
                                prop_assert_eq!(
                                    paths.len() as u64,
                                    (limit.unwrap()).min(full.len() as u64)
                                );
                                for p in paths {
                                    prop_assert!(
                                        full.contains(p),
                                        "delivered a non-result path {:?}",
                                        p
                                    );
                                }
                            }
                        } else {
                            prop_assert_eq!(
                                &from_overlay.paths,
                                &from_snapshot.paths,
                                "q({}, {}, {}) method={:?} limit={:?} threads={}",
                                s, t, k, method, limit, threads
                            );
                        }
                        prop_assert_eq!(
                            from_overlay.num_results(),
                            from_snapshot.num_results()
                        );
                        prop_assert_eq!(
                            from_overlay.report.method,
                            from_snapshot.report.method,
                            "same index must yield the same plan"
                        );
                        prop_assert_eq!(
                            from_overlay.report.cut_position,
                            from_snapshot.report.cut_position
                        );
                    }
                }
            }
        }
    }

    /// Surgical retention soundness: a cache carried across an arbitrary
    /// interleaving of mutations and queries answers exactly like a
    /// cache-free engine at every step — retained entries never leak a
    /// stale result.
    #[test]
    fn retained_cache_never_serves_stale_results(
        n in 4u32..10,
        base in proptest::collection::vec((0u32..10, 0u32..10), 0..30),
        script in proptest::collection::vec((0u32..4, 0u32..10, 0u32..10), 1..40),
        k in 2u32..5,
    ) {
        let mut dynamic = DynamicGraph::new(graph_from_edges(n, &base));
        let mut cache = PlanCache::default();
        let request = |s: u32, t: u32| {
            QueryRequest::paths(s, t).max_hops(k).collect_paths(true)
        };
        for (op, u, v) in script {
            match op {
                0 if u < n && v < n => {
                    dynamic.insert_edge(u, v);
                }
                1 if u < n && v < n => {
                    dynamic.remove_edge(u, v);
                }
                _ => {
                    // Query with the carried (possibly retained) cache...
                    let (s, t) = if op == 2 { (0, 1) } else { (u % n, v % n) };
                    if s == t {
                        continue;
                    }
                    let mut engine =
                        DynamicEngine::with_cache(&dynamic, PathEnumConfig::default(), cache);
                    let got = engine.execute(&request(s, t)).expect("valid query");
                    cache = engine.into_cache();
                    // ...and against a cache-free oracle on the same graph.
                    let mut oracle = DynamicEngine::with_cache(
                        &dynamic,
                        PathEnumConfig::default(),
                        PlanCache::new(0),
                    );
                    let expected = oracle.execute(&request(s, t)).expect("valid query");
                    prop_assert_eq!(
                        &got.paths,
                        &expected.paths,
                        "stale cache entry leaked for q({}, {}, {})",
                        s, t, k
                    );
                }
            }
        }
    }
}

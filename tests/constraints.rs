//! Property tests for the Appendix E constraint extensions: each
//! constrained enumeration must equal brute-force enumeration followed
//! by post-filtering.

use proptest::prelude::*;

use pathenum_repro::core::reference::brute_force_paths;
use pathenum_repro::prelude::*;

fn graph_from_edges(n: u32, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        if u != v {
            b.add_edge(u, v).expect("in-range edge");
        }
    }
    b.finish()
}

fn arb_graph() -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (4u32..14).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..60);
        (Just(n), edges)
    })
}

/// Deterministic pseudo-weight per edge in 0..8.
fn weight(u: u32, v: u32) -> u64 {
    (u64::from(u) << 32 | u64::from(v)).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 61
}

/// Deterministic binary label per edge.
fn label(u: u32, v: u32) -> u32 {
    (((u64::from(u) << 32 | u64::from(v)).wrapping_mul(0xd134_2543_de82_ef95) >> 63) & 1) as u32
}

fn all_paths(g: &CsrGraph, q: Query) -> Vec<Vec<VertexId>> {
    let mut sink = CollectingSink::default();
    brute_force_paths(g, q, &mut sink);
    sink.paths
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn predicate_constraint_equals_post_filter(
        (n, edges) in arb_graph(),
        k in 2u32..6,
        threshold in 0u64..8,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let pred = |u: u32, v: u32| weight(u, v) >= threshold;
        let mut constrained = CollectingSink::default();
        pathenum_repro::core::constraints::path_enum_with_predicate(
            &g, q, PathEnumConfig::default(), pred, &mut constrained,
        )
        .expect("valid query");
        let mut expected: Vec<Vec<VertexId>> = all_paths(&g, q)
            .into_iter()
            .filter(|p| p.windows(2).all(|w| pred(w[0], w[1])))
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(constrained.sorted_paths(), expected);
    }

    #[test]
    fn accumulative_constraint_equals_post_filter(
        (n, edges) in arb_graph(),
        k in 2u32..6,
        threshold in 0u64..20,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let index = Index::build(&g, q);
        let acc_query = AccumulativeQuery {
            identity: 0u64,
            combine: |a, b| a + b,
            weight,
            check: move |&total: &u64| total >= threshold,
            prune: None,
        };
        let mut constrained = CollectingSink::default();
        let mut counters = Counters::default();
        accumulative_dfs(&index, &acc_query, &mut constrained, &mut counters);
        let mut expected: Vec<Vec<VertexId>> = all_paths(&g, q)
            .into_iter()
            .filter(|p| p.windows(2).map(|w| weight(w[0], w[1])).sum::<u64>() >= threshold)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(constrained.sorted_paths(), expected);
    }

    #[test]
    fn monotone_prune_does_not_change_results(
        (n, edges) in arb_graph(),
        k in 2u32..6,
        cap in 1u64..20,
    ) {
        // "Sum of non-negative weights <= cap" admits the sound prune of
        // Appendix E; with and without it must agree.
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let index = Index::build(&g, q);
        let run = |prune: Option<fn(&u64) -> bool>| {
            let acc_query = AccumulativeQuery {
                identity: 0u64,
                combine: |a, b| a + b,
                weight,
                check: move |&total: &u64| total <= cap,
                prune,
            };
            let mut sink = CollectingSink::default();
            let mut counters = Counters::default();
            accumulative_dfs(&index, &acc_query, &mut sink, &mut counters);
            sink.sorted_paths()
        };
        // The closure-to-fn-pointer prune needs the cap statically; use a
        // generous static bound plus the exact final check instead.
        let without = run(None);
        static CAP_HOLDER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        CAP_HOLDER.store(cap, std::sync::atomic::Ordering::Relaxed);
        fn prune(total: &u64) -> bool {
            *total <= CAP_HOLDER.load(std::sync::atomic::Ordering::Relaxed)
        }
        let with = run(Some(prune));
        prop_assert_eq!(with, without);
    }

    #[test]
    fn automaton_constraint_equals_post_filter(
        (n, edges) in arb_graph(),
        k in 2u32..6,
    ) {
        // Automaton accepting label sequences with an even number of 1s.
        let mut automaton = Automaton::new(2, 2, 0).expect("valid shape");
        automaton.add_transition(0, 0, 0).expect("in range");
        automaton.add_transition(0, 1, 1).expect("in range");
        automaton.add_transition(1, 0, 1).expect("in range");
        automaton.add_transition(1, 1, 0).expect("in range");
        automaton.set_accepting(0).expect("in range");

        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let index = Index::build(&g, q);
        let mut constrained = CollectingSink::default();
        let mut counters = Counters::default();
        automaton_dfs(&index, &automaton, label, &mut constrained, &mut counters);
        let mut expected: Vec<Vec<VertexId>> = all_paths(&g, q)
            .into_iter()
            .filter(|p| {
                p.windows(2).map(|w| label(w[0], w[1])).filter(|&l| l == 1).count() % 2 == 0
            })
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(constrained.sorted_paths(), expected);
    }
}

#[test]
fn proptest_runs_are_deterministic_smoke() {
    // Pin one concrete case so failures here are easy to bisect.
    let g = graph_from_edges(5, &[(0, 2), (2, 1), (0, 3), (3, 2), (2, 3), (3, 1)]);
    let q = Query::new(0, 1, 3).unwrap();
    // 0-2-1, 0-3-1, 0-2-3-1, 0-3-2-1.
    assert_eq!(all_paths(&g, q).len(), 4);
}

//! End-to-end integration: dataset proxies -> query generation ->
//! measurement pipeline, exercising the exact flow the benchmark harness
//! uses, at smoke-test scale.

use std::time::Duration;

use pathenum_repro::prelude::*;
use pathenum_repro::workloads::runner::{
    measure_response_time, run_query, run_query_set, summarize,
};
use pathenum_repro::workloads::{datasets, generate_queries, QueryGenConfig};

#[test]
fn full_pipeline_on_gg() {
    let graph = datasets::gg();
    let queries = generate_queries(&graph, QueryGenConfig::paper_default(6, 5, 17));
    assert_eq!(queries.len(), 6);
    let config = MeasureConfig {
        time_limit: Duration::from_millis(200),
        response_limit: 100,
    };

    // Every algorithm of Table 3 completes and agrees on result counts
    // for queries that do not time out.
    let mut counts: Vec<Vec<u64>> = Vec::new();
    for algo in Algorithm::table3() {
        let summary = run_query_set(algo, &graph, &queries, config);
        assert_eq!(summary.measurements.len(), queries.len());
        counts.push(
            summary
                .measurements
                .iter()
                .map(|m| if m.timed_out { u64::MAX } else { m.results })
                .collect(),
        );
    }
    for row in &counts[1..] {
        for (i, (&a, &b)) in counts[0].iter().zip(row).enumerate() {
            if a != u64::MAX && b != u64::MAX {
                assert_eq!(a, b, "result count mismatch on query {i}");
            }
        }
    }
}

#[test]
fn response_time_is_bounded_by_query_time_limit() {
    let graph = datasets::ep();
    let queries = generate_queries(&graph, QueryGenConfig::paper_default(3, 6, 23));
    let config = MeasureConfig {
        time_limit: Duration::from_millis(150),
        response_limit: 50,
    };
    for q in queries {
        let response = measure_response_time(Algorithm::IdxDfs, &graph, q, config);
        assert!(response <= config.time_limit + Duration::from_millis(50));
    }
}

#[test]
fn timeouts_are_reported_on_hostile_workloads() {
    // The dense ye proxy with a large k floods any enumerator; the
    // runner must censor rather than hang.
    let graph = datasets::build("ye").expect("registered");
    let queries = generate_queries(&graph, QueryGenConfig::paper_default(2, 8, 31));
    let config = MeasureConfig {
        time_limit: Duration::from_millis(50),
        response_limit: 1000,
    };
    for q in queries {
        let m = run_query(Algorithm::IdxDfs, &graph, q, config);
        assert!(m.elapsed <= config.time_limit + Duration::from_millis(100));
        if m.timed_out {
            assert!(m.results > 0, "a censored dense query still yields results");
        }
    }
}

#[test]
fn pathenum_optimizer_picks_join_somewhere_on_dense_graphs() {
    // On the dense proxies with long hop constraints, the cost model
    // should select IDX-JOIN for at least some queries (the Table 3
    // phenomenon that PathEnum tracks the better of the two).
    let graph = datasets::build("ye").expect("registered");
    let queries = generate_queries(&graph, QueryGenConfig::paper_default(6, 6, 5));
    let mut methods = std::collections::HashSet::new();
    for q in queries {
        let mut sink = pathenum_repro::workloads::runner::BoundedSink::new(
            Some(2000),
            Some(Duration::from_millis(100)),
        );
        let report = path_enum(&graph, q, PathEnumConfig::default(), &mut sink).expect("valid");
        methods.insert(report.method);
    }
    assert!(!methods.is_empty());
}

#[test]
fn summarize_handles_empty_and_mixed_sets() {
    let summary = summarize(Vec::new());
    assert_eq!(summary.mean_query_time_ms, 0.0);
    assert_eq!(summary.timeout_fraction, 0.0);
}

#[test]
fn proxy_and_generator_shapes_are_stable() {
    // Guard the workload characteristics the experiments rely on: the ep
    // proxy is heavy-tailed and all dataset builds are connected enough
    // to admit V' x V' queries.
    for name in ["ep", "gg", "tw", "ye"] {
        let g = datasets::build(name).expect("registered");
        let queries = generate_queries(&g, QueryGenConfig::paper_default(5, 6, 1));
        assert!(!queries.is_empty(), "{name} admits no queries");
    }
}

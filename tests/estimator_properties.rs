//! Property tests for the cardinality estimators: the full-fledged DP is
//! an *exact* walk counter (Section 6.4), prefix and suffix passes agree,
//! and the modeled plan costs are internally consistent.

use proptest::prelude::*;

use pathenum_repro::core::estimator::{preliminary_estimate, FullEstimate};
use pathenum_repro::core::reference::{count_paths, count_walks};
use pathenum_repro::core::{optimize_join_order, Index};
use pathenum_repro::prelude::*;

fn graph_from_edges(n: u32, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        if u != v {
            b.add_edge(u, v).expect("in-range edge");
        }
    }
    b.finish()
}

fn arb_graph() -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (4u32..14).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..60);
        (Just(n), edges)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn full_estimate_counts_walks_exactly(
        (n, edges) in arb_graph(),
        k in 2u32..7,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let est = FullEstimate::compute(&Index::build(&g, q));
        prop_assert_eq!(est.total_walks(), count_walks(&g, q));
    }

    #[test]
    fn prefix_and_suffix_sums_agree_at_the_ends(
        (n, edges) in arb_graph(),
        k in 2u32..7,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let est = FullEstimate::compute(&Index::build(&g, q));
        prop_assert_eq!(est.prefix_sum(k), est.suffix_sum(0));
        // Prefix sizes grow monotonically up to padding effects at the
        // start: |Q[0:0]| is 1 exactly when the index is non-empty.
        prop_assert!(est.prefix_sum(0) <= 1);
    }

    #[test]
    fn walk_count_upper_bounds_path_count(
        (n, edges) in arb_graph(),
        k in 2u32..6,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let est = FullEstimate::compute(&Index::build(&g, q));
        prop_assert!(est.total_walks() >= count_paths(&g, q));
    }

    #[test]
    fn plan_costs_are_consistent(
        (n, edges) in arb_graph(),
        k in 2u32..7,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let index = Index::build(&g, q);
        let est = FullEstimate::compute(&index);
        if let Some(plan) = optimize_join_order(&index, &est) {
            prop_assert!(plan.cut >= 1 && plan.cut < k);
            prop_assert!(plan.t_join >= plan.estimated_walks);
            // The chosen cut minimizes |Q[0:i]| + |Q[i:k]| over 0 < i < k.
            let chosen = est.prefix_sum(plan.cut) + est.suffix_sum(plan.cut);
            for i in 1..k {
                prop_assert!(
                    chosen <= est.prefix_sum(i) + est.suffix_sum(i),
                    "cut {} not minimal vs {}", plan.cut, i
                );
            }
        } else {
            prop_assert!(index.is_empty());
        }
    }

    #[test]
    fn preliminary_is_zero_iff_index_empty(
        (n, edges) in arb_graph(),
        k in 2u32..7,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let index = Index::build(&g, q);
        let est = preliminary_estimate(&index);
        if index.is_empty() {
            prop_assert_eq!(est, 0);
        } else {
            // A non-empty index means s reaches t within k, so the
            // relaxed search tree contains at least the shortest walk.
            prop_assert!(est >= 1);
        }
    }
}

//! Property tests for the light-weight index: it must match its paper
//! definitions exactly (Proposition 4.3 membership, the `I_t`/`I_s`
//! lookup semantics) and store the same per-position neighbor sets as
//! Algorithm 2's fully reduced relations (Appendix B).

use proptest::prelude::*;

use pathenum_repro::core::relations::Relations;
use pathenum_repro::graph::bfs::{distances_from_source, distances_to_target};
use pathenum_repro::graph::types::{dist_add, INFINITE_DISTANCE};
use pathenum_repro::prelude::*;

fn graph_from_edges(n: u32, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        if u != v {
            b.add_edge(u, v).expect("in-range edge");
        }
    }
    b.finish()
}

fn arb_graph() -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (4u32..14).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..60);
        (Just(n), edges)
    })
}

/// Reference boundary distances with the paper's endpoint conventions.
fn boundary_distances(g: &CsrGraph, s: u32, t: u32, k: u32) -> (Vec<u32>, Vec<u32>) {
    let mut ds = distances_from_source(g, s, t, k);
    let mut dt = distances_to_target(g, s, t, k);
    ds[t as usize] = g
        .in_neighbors(t)
        .iter()
        .map(|&u| dist_add(ds[u as usize], 1))
        .min()
        .unwrap_or(INFINITE_DISTANCE);
    dt[s as usize] = g
        .out_neighbors(s)
        .iter()
        .map(|&w| dist_add(dt[w as usize], 1))
        .min()
        .unwrap_or(INFINITE_DISTANCE);
    (ds, dt)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(80))]

    #[test]
    fn index_membership_matches_proposition_4_3(
        (n, edges) in arb_graph(),
        k in 2u32..7,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let idx = Index::build(&g, q);
        let (ds, dt) = boundary_distances(&g, 0, 1, k);

        let indexed: std::collections::HashSet<u32> =
            (0..idx.num_vertices() as u32).map(|l| idx.global(l)).collect();
        if dist_add(ds[0], dt[0]) > k || dist_add(ds[1], dt[1]) > k {
            prop_assert!(idx.is_empty());
            return Ok(());
        }
        for v in g.vertices() {
            let member = dist_add(ds[v as usize], dt[v as usize]) <= k;
            prop_assert_eq!(
                indexed.contains(&v),
                member,
                "vertex {} membership mismatch (v.s={}, v.t={})",
                v, ds[v as usize], dt[v as usize]
            );
        }
    }

    #[test]
    fn i_t_lookup_matches_definition(
        (n, edges) in arb_graph(),
        k in 2u32..7,
        budget in 0u32..7,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let idx = Index::build(&g, q);
        if idx.is_empty() {
            return Ok(());
        }
        let (ds, dt) = boundary_distances(&g, 0, 1, k);
        for local in 0..idx.num_vertices() as u32 {
            let v = idx.global(local);
            if v == 1 {
                continue; // t holds only the synthetic padding loop
            }
            let mut expected: Vec<u32> = g
                .out_neighbors(v)
                .iter()
                .copied()
                .filter(|&w| w != 0) // never s
                .filter(|&w| dist_add(dist_add(ds[v as usize], dt[w as usize]), 1) <= k)
                .filter(|&w| dt[w as usize] <= budget)
                .collect();
            expected.sort_unstable();
            let mut got: Vec<u32> =
                idx.i_t(local, budget).iter().map(|&l| idx.global(l)).collect();
            got.sort_unstable();
            prop_assert_eq!(got, expected, "I_t({}, {}) mismatch", v, budget);
        }
    }

    #[test]
    fn index_equals_reduced_relations_per_position(
        (n, edges) in arb_graph(),
        k in 2u32..6,
    ) {
        // Appendix B: for v in the heads of R_i (v != t),
        // R_i(v, .) == I_t(v, k - i).
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let idx = Index::build(&g, q);
        let rel = Relations::build_reduced(&g, q);
        let local_of = |v: u32| (0..idx.num_vertices() as u32).find(|&l| idx.global(l) == v);
        for i in 1..=k {
            let heads: std::collections::HashSet<u32> =
                rel.relation(i).iter().map(|&(a, _)| a).collect();
            for &v in heads.iter().filter(|&&v| v != 1) {
                let mut from_rel: Vec<u32> = rel.successors(i, v).collect();
                from_rel.sort_unstable();
                let Some(local) = local_of(v) else {
                    prop_assert!(from_rel.is_empty() || idx.is_empty(),
                        "vertex {} in relations but not in index", v);
                    continue;
                };
                let mut from_idx: Vec<u32> =
                    idx.i_t(local, k - i).iter().map(|&l| idx.global(l)).collect();
                // The relations include the (t, t) padding tuple in
                // R_2..R_k; I_t(t, .) does too, so only non-t heads are
                // compared and no adjustment is needed.
                from_idx.sort_unstable();
                prop_assert_eq!(from_idx, from_rel, "position {} vertex {}", i, v);
            }
        }
    }

    #[test]
    fn level_lookup_matches_c_i(
        (n, edges) in arb_graph(),
        k in 2u32..7,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid");
        let idx = Index::build(&g, q);
        if idx.is_empty() {
            return Ok(());
        }
        let (ds, dt) = boundary_distances(&g, 0, 1, k);
        for i in 0..=k {
            let mut level: Vec<u32> = idx.level(i).map(|l| idx.global(l)).collect();
            level.sort_unstable();
            let mut expected: Vec<u32> = g
                .vertices()
                .filter(|&v| {
                    dist_add(ds[v as usize], dt[v as usize]) <= k
                        && ds[v as usize] <= i
                        && dt[v as usize] <= k - i
                })
                .collect();
            expected.sort_unstable();
            prop_assert_eq!(level, expected, "level {}", i);
        }
    }
}

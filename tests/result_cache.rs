//! Result-cache soundness: a replayed answer must be indistinguishable
//! from re-running the query.
//!
//! * A result hit equals cold execution path-for-path — same order,
//!   same counts, same termination — across methods and limits.
//! * Bounded (`LimitReached`) entries serve only equal-or-tighter
//!   limits; either way the response equals a cache-free oracle's.
//! * Footprint retention over mutation streams never serves a stale
//!   answer: after every insert/remove, the caching engine matches a
//!   cache-free engine on the mutated graph exactly — whether the entry
//!   was retained, invalidated, or replayed.
//! * Grouped `execute_batch` is byte-identical to solo execution across
//!   worker counts {1, 2, 4, 8}, and the stats invariant
//!   `hits + misses + bypasses == lookups` holds throughout.

use std::sync::Arc;

use proptest::prelude::*;

use pathenum_repro::graph::DynamicGraph;
use pathenum_repro::prelude::*;

fn graph_from_edges(n: u32, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        if u != v && u < n && v < n {
            b.add_edge(u, v).expect("in-range edge");
        }
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Acceptance: a result hit replays exactly what cold execution
    /// produced — across optimizer-chosen and forced methods, with and
    /// without limits.
    #[test]
    fn result_hits_equal_cold_execution(
        n in 5u32..14,
        edges in proptest::collection::vec((0u32..14, 0u32..14), 5..80),
        k in 2u32..6,
        method_sel in 0u32..3,
        limit_sel in 0u64..9,
    ) {
        let g = graph_from_edges(n, &edges);
        let limit = (limit_sel > 0).then_some(limit_sel);
        let build = || {
            let mut r = QueryRequest::paths(0, 1).max_hops(k).collect_paths(true);
            if let Some(l) = limit {
                r = r.limit(l);
            }
            match method_sel {
                1 => r = r.method(Method::IdxDfs),
                2 => r = r.method(Method::IdxJoin),
                _ => {}
            }
            r
        };

        let mut caching = QueryEngine::new(&g, PathEnumConfig::default())
            .with_result_cache(ResultCache::default());
        let cold = caching.execute(&build()).unwrap();
        let warm = caching.execute(&build()).unwrap();
        prop_assert_eq!(warm.report.cache, CacheOutcome::ResultHit);
        prop_assert_eq!(&warm.paths, &cold.paths, "replay vs cold path order");
        prop_assert_eq!(warm.termination, cold.termination);
        prop_assert_eq!(warm.num_results(), cold.num_results());

        // Against an engine with no result layer at all.
        let mut plain = QueryEngine::new(&g, PathEnumConfig::default());
        let reference = plain.execute(&build()).unwrap();
        prop_assert_eq!(&warm.paths, &reference.paths, "replay vs cache-free engine");
        prop_assert_eq!(warm.termination, reference.termination);

        let stats = caching.result_cache_stats();
        prop_assert_eq!(stats.hits + stats.misses + stats.bypasses, stats.lookups);
        prop_assert_eq!(stats.lookups, 2);
    }

    /// Bound-safety: an entry truncated at limit `l1` may serve a later
    /// request only when its limit is equal or tighter; whatever the
    /// cache decides, the response equals a cache-free oracle's.
    #[test]
    fn truncated_entries_reuse_only_tighter_limits(
        n in 5u32..12,
        edges in proptest::collection::vec((0u32..12, 0u32..12), 10..70),
        k in 3u32..6,
        l1 in 1u64..6,
        l2 in 1u64..10,
    ) {
        let g = graph_from_edges(n, &edges);
        let build = |l: u64| {
            QueryRequest::paths(0, 1)
                .max_hops(k)
                .limit(l)
                .collect_paths(true)
        };

        let mut caching = QueryEngine::new(&g, PathEnumConfig::default())
            .with_result_cache(ResultCache::default());
        let first = caching.execute(&build(l1)).unwrap();
        let second = caching.execute(&build(l2)).unwrap();

        let mut oracle = QueryEngine::new(&g, PathEnumConfig::default());
        let expected = oracle.execute(&build(l2)).unwrap();
        prop_assert_eq!(&second.paths, &expected.paths, "second run vs oracle");
        prop_assert_eq!(second.termination, expected.termination);
        prop_assert_eq!(second.num_results(), expected.num_results());

        match first.termination {
            // A complete answer is a universal prefix: any limit hits.
            Termination::Completed => {
                prop_assert_eq!(second.report.cache, CacheOutcome::ResultHit);
            }
            // A truncated answer serves only equal-or-tighter limits; a
            // looser one falls through to the plan layer (whose warm
            // entry reads `Hit`) and re-enumerates.
            Termination::LimitReached => {
                if l2 <= l1 {
                    prop_assert_eq!(
                        second.report.cache,
                        CacheOutcome::ResultHit,
                        "l1={} l2={}",
                        l1,
                        l2
                    );
                } else {
                    prop_assert_ne!(
                        second.report.cache,
                        CacheOutcome::ResultHit,
                        "l1={} l2={}",
                        l1,
                        l2
                    );
                }
            }
            other => prop_assert!(false, "unexpected termination {:?}", other),
        }
    }

    /// Footprint retention soundness: across an arbitrary mutation
    /// stream, the caching dynamic engine must match a cache-free engine
    /// after *every* step — a retained entry that should have died would
    /// show up here as a stale path list.
    #[test]
    fn mutation_streams_never_serve_stale_answers(
        n in 4u32..10,
        base in proptest::collection::vec((0u32..10, 0u32..10), 0..40),
        muts in proptest::collection::vec((0u32..2, (0u32..10, 0u32..10)), 1..12),
        k in 2u32..5,
        limit_sel in 0u64..7,
    ) {
        let g = graph_from_edges(n, &base);
        let mut graph = DynamicGraph::new(g);
        let limit = (limit_sel > 0).then_some(limit_sel);
        let build = || {
            let mut r = QueryRequest::paths(0, 1).max_hops(k).collect_paths(true);
            if let Some(l) = limit {
                r = r.limit(l);
            }
            r
        };

        // Seed the cache on the base graph.
        let mut engine = DynamicEngine::new(&graph, PathEnumConfig::default())
            .with_result_cache(ResultCache::default());
        engine.execute(&build()).unwrap();
        let mut results = engine.into_result_cache().unwrap();

        for (op, (u, v)) in muts {
            let insert = op == 1;
            if u == v || u >= n || v >= n {
                continue;
            }
            if insert {
                graph.insert_edge(u, v);
            } else {
                graph.remove_edge(u, v);
            }

            let mut caching = DynamicEngine::new(&graph, PathEnumConfig::default())
                .with_result_cache(results);
            let cached = caching.execute(&build()).unwrap();
            let stats = caching.result_cache_stats();
            results = caching.into_result_cache().unwrap();

            let mut oracle = DynamicEngine::new(&graph, PathEnumConfig::default());
            let fresh = oracle.execute(&build()).unwrap();
            prop_assert_eq!(
                &cached.paths,
                &fresh.paths,
                "cached vs fresh after {} ({}, {})",
                if insert { "insert" } else { "remove" },
                u,
                v
            );
            prop_assert_eq!(cached.termination, fresh.termination);
            prop_assert_eq!(stats.hits + stats.misses + stats.bypasses, stats.lookups);
        }
    }
}

proptest! {
    // Each case spins up a service (worker threads): fewer, fatter cases.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Shared-execution acceptance: a grouped batch — result layer on,
    /// any worker count — returns exactly what solo engine execution
    /// returns, request for request, byte for byte.
    #[test]
    fn grouped_batches_equal_solo_execution(
        n in 6u32..14,
        edges in proptest::collection::vec((0u32..14, 0u32..14), 10..90),
        k in 2u32..5,
        raw_targets in proptest::collection::vec(0u32..14, 4..24),
        workers_sel in 0usize..4,
    ) {
        let workers = [1usize, 2, 4, 8][workers_sel];
        let g = Arc::new(graph_from_edges(n, &edges));
        // Skew onto few shapes so groups actually form.
        let targets: Vec<u32> = raw_targets.iter().map(|&t| 1 + t % (n - 1)).collect();
        let build = |t: u32| QueryRequest::paths(0, t).max_hops(k).collect_paths(true);

        let mut oracle = QueryEngine::new(&g, PathEnumConfig::default());
        let solo: Vec<QueryResponse> = targets
            .iter()
            .map(|&t| oracle.execute(&build(t)).unwrap())
            .collect();

        let service = PathEnumService::with_config(
            Arc::clone(&g),
            PathEnumConfig::default(),
            ServiceConfig {
                workers,
                result_cache_bytes: 1 << 20,
                ..ServiceConfig::default()
            },
        );
        let grouped = service.execute_batch(targets.iter().map(|&t| build(t)).collect());
        prop_assert_eq!(grouped.len(), solo.len());
        for (i, (response, expected)) in grouped.iter().zip(&solo).enumerate() {
            let response = response.as_ref().unwrap();
            prop_assert_eq!(
                &response.paths,
                &expected.paths,
                "workers={} request {} (t={})",
                workers,
                i,
                targets[i]
            );
            prop_assert_eq!(response.termination, expected.termination);
            prop_assert_eq!(response.num_results(), expected.num_results());
        }
        let stats = service.result_cache_stats();
        prop_assert_eq!(stats.hits + stats.misses + stats.bypasses, stats.lookups);
        prop_assert_eq!(stats.lookups, targets.len() as u64);
    }
}

//! Parallel/sequential agreement: for random Erdős–Rényi and power-law
//! graphs, the *set* of paths produced by `QueryRequest::threads(n)`
//! equals the sequential oracle for every n in {1, 2, 4, 8}, and the
//! merged *order* is identical across thread counts (the determinism
//! guarantee of `pathenum::parallel`).
//!
//! Case budget: 96 ER cases + 64 power-law cases + 64 forced-method
//! cases = 224 distinct random graph/query instances (each evaluated at
//! every thread count), clearing the 200-instance floor this suite is
//! required to cover.

use proptest::prelude::*;

use pathenum_repro::graph::generators::{power_law, PowerLawConfig};
use pathenum_repro::prelude::*;

fn graph_from_edges(n: u32, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        if u != v {
            b.add_edge(u, v).expect("in-range edge");
        }
    }
    b.finish()
}

fn arb_graph() -> impl Strategy<Value = (u32, Vec<(u32, u32)>)> {
    (4u32..14).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n, 0..n), 0..70);
        (Just(n), edges)
    })
}

/// Sequential oracle: the sorted path set of the plain one-shot API.
fn oracle_paths(g: &CsrGraph, q: Query) -> Vec<Vec<VertexId>> {
    let mut sink = CollectingSink::default();
    path_enum(g, q, PathEnumConfig::default(), &mut sink).expect("valid query");
    sink.sorted_paths()
}

/// Paths delivered by `threads(n)`, in merged emission order.
fn threaded_paths(
    engine: &mut QueryEngine<'_>,
    q: Query,
    threads: usize,
    method: Option<Method>,
) -> Vec<Vec<VertexId>> {
    let mut request = QueryRequest::from_query(q)
        .threads(threads)
        .collect_paths(true);
    if let Some(m) = method {
        request = request.method(m);
    }
    let response = engine.execute(&request).expect("valid request");
    assert_eq!(
        response.termination,
        Termination::Completed,
        "unbounded request completes"
    );
    response.paths
}

/// The core agreement check, shared by every property below.
fn check_agreement(g: &CsrGraph, q: Query, method: Option<Method>) -> Result<(), TestCaseError> {
    let expected = oracle_paths(g, q);
    let mut engine = QueryEngine::new(g, PathEnumConfig::default());
    let mut merged_orders: Vec<Vec<Vec<VertexId>>> = Vec::new();
    for threads in [1usize, 2, 4, 8] {
        let paths = threaded_paths(&mut engine, q, threads, method);
        let mut sorted = paths.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&sorted, &expected, "threads={} set mismatch", threads);
        if threads >= 2 {
            merged_orders.push(paths);
        }
    }
    // Determinism: the merged order is identical for every parallel
    // thread count.
    for pair in merged_orders.windows(2) {
        prop_assert_eq!(&pair[0], &pair[1], "merged order varies with thread count");
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn erdos_renyi_agreement(
        (n, edges) in arb_graph(),
        k in 2u32..7,
    ) {
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid query");
        check_agreement(&g, q, None)?;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn power_law_agreement(
        seed in 0u64..1_000_000,
        k in 3u32..6,
        t in 1u32..40,
    ) {
        // Preferential-attachment graphs exercise hub-heavy first-hop
        // partitions (one task much larger than the rest).
        let g = power_law(PowerLawConfig::social(120, 3, seed));
        let q = Query::new(0, t, k).expect("valid query");
        check_agreement(&g, q, None)?;
    }

    #[test]
    fn forced_method_agreement(
        (n, edges) in arb_graph(),
        k in 2u32..6,
        pick_join in 0u32..2,
    ) {
        // Cover both parallel executors explicitly, independent of what
        // the cost model would choose.
        let g = graph_from_edges(n, &edges);
        let q = Query::new(0, 1, k).expect("valid query");
        let method = if pick_join == 1 { Method::IdxJoin } else { Method::IdxDfs };

        // The oracle must use the same forced method for an
        // order-insensitive set comparison to be meaningful.
        let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
        let sequential = engine
            .execute(
                &QueryRequest::from_query(q)
                    .method(method)
                    .collect_paths(true),
            )
            .expect("valid request");
        let mut expected = sequential.paths;
        expected.sort_unstable();

        let mut merged_orders: Vec<Vec<Vec<VertexId>>> = Vec::new();
        for threads in [2usize, 4, 8] {
            let paths = threaded_paths(&mut engine, q, threads, Some(method));
            let mut sorted = paths.clone();
            sorted.sort_unstable();
            prop_assert_eq!(&sorted, &expected, "threads={} {:?}", threads, method);
            merged_orders.push(paths);
        }
        for pair in merged_orders.windows(2) {
            prop_assert_eq!(&pair[0], &pair[1], "merged order varies with thread count");
        }
    }
}

#[test]
fn dfs_merged_order_equals_sequential_emission_order() {
    // Stronger than the cross-thread-count guarantee: for the DFS
    // method the canonical parallel order *is* the sequential order.
    let g = power_law(PowerLawConfig::social(200, 4, 17));
    let mut engine = QueryEngine::new(&g, PathEnumConfig::default());
    for t in [1u32, 5, 23] {
        let q = Query::new(0, t, 5).expect("valid query");
        let sequential = engine
            .execute(
                &QueryRequest::from_query(q)
                    .method(Method::IdxDfs)
                    .collect_paths(true),
            )
            .expect("valid")
            .paths;
        let parallel = engine
            .execute(
                &QueryRequest::from_query(q)
                    .method(Method::IdxDfs)
                    .threads(4)
                    .collect_paths(true),
            )
            .expect("valid")
            .paths;
        assert_eq!(sequential, parallel, "t={t}");
    }
}

//! Dynamic-graph integration: overlay snapshots must behave exactly like
//! graphs rebuilt from scratch, and the fraud-cycle pattern (query
//! `q(v', v, k-1)` per inserted edge) must find exactly the cycles the
//! insertion closes.

use proptest::prelude::*;

use pathenum_repro::graph::DynamicGraph;
use pathenum_repro::prelude::*;

fn graph_from_edges(n: u32, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        if u != v {
            b.add_edge(u, v).expect("in-range edge");
        }
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn snapshot_equals_rebuild(
        n in 4u32..12,
        base in proptest::collection::vec((0u32..12, 0u32..12), 0..40),
        inserts in proptest::collection::vec((0u32..12, 0u32..12), 0..15),
        k in 2u32..5,
    ) {
        let base: Vec<(u32, u32)> =
            base.into_iter().filter(|&(u, v)| u < n && v < n).collect();
        let inserts: Vec<(u32, u32)> =
            inserts.into_iter().filter(|&(u, v)| u < n && v < n).collect();

        let mut dynamic = DynamicGraph::new(graph_from_edges(n, &base));
        for &(u, v) in &inserts {
            dynamic.insert_edge(u, v);
        }
        let snapshot = dynamic.snapshot();

        let mut combined = base.clone();
        combined.extend(inserts.iter().copied());
        let rebuilt = graph_from_edges(n, &combined);

        prop_assert_eq!(snapshot.num_edges(), rebuilt.num_edges());
        let q = Query::new(0, 1, k).expect("valid");
        let mut a = CollectingSink::default();
        let mut b = CollectingSink::default();
        path_enum(&snapshot, q, PathEnumConfig::default(), &mut a).expect("valid query");
        path_enum(&rebuilt, q, PathEnumConfig::default(), &mut b).expect("valid query");
        prop_assert_eq!(a.sorted_paths(), b.sorted_paths());
    }

    #[test]
    fn inserted_edge_closes_exactly_the_reported_cycles(
        n in 4u32..10,
        base in proptest::collection::vec((0u32..10, 0u32..10), 0..30),
        (u, v) in (0u32..10, 0u32..10),
        k in 3u32..6,
    ) {
        prop_assume!(u != v && u < n && v < n);
        let base: Vec<(u32, u32)> =
            base.into_iter().filter(|&(a, b)| a < n && b < n && (a, b) != (u, v)).collect();
        let graph = graph_from_edges(n, &base);

        // Cycles through the new edge (u, v) = paths v -> u of <= k-1
        // edges in the pre-insertion graph.
        let q = Query::new(v, u, k - 1).expect("u != v");
        let mut sink = CollectingSink::default();
        path_enum(&graph, q, PathEnumConfig::default(), &mut sink).expect("valid query");

        // Each reported path closed by (u, v) is a simple cycle of <= k
        // edges containing the new edge.
        for path in &sink.paths {
            prop_assert_eq!(path[0], v);
            prop_assert_eq!(*path.last().unwrap(), u);
            prop_assert!(path.len() as u32 <= k);
            for w in path.windows(2) {
                prop_assert!(graph.has_edge(w[0], w[1]));
            }
        }
    }
}

#[test]
fn overlay_rejects_duplicates_against_base_and_itself() {
    let g = graph_from_edges(4, &[(0, 1), (1, 2)]);
    let mut d = DynamicGraph::new(g);
    assert!(!d.insert_edge(0, 1));
    assert!(d.insert_edge(2, 3));
    assert!(!d.insert_edge(2, 3));
    assert_eq!(d.num_edges(), 3);
}

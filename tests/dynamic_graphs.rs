//! Dynamic-graph integration: overlay snapshots must behave exactly like
//! graphs rebuilt from scratch, and the fraud-cycle pattern (query
//! `q(v', v, k-1)` per inserted edge) must find exactly the cycles the
//! insertion closes.

use proptest::prelude::*;

use pathenum_repro::graph::DynamicGraph;
use pathenum_repro::prelude::*;

fn graph_from_edges(n: u32, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        if u != v {
            b.add_edge(u, v).expect("in-range edge");
        }
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn snapshot_equals_rebuild(
        n in 4u32..12,
        base in proptest::collection::vec((0u32..12, 0u32..12), 0..40),
        inserts in proptest::collection::vec((0u32..12, 0u32..12), 0..15),
        k in 2u32..5,
    ) {
        let base: Vec<(u32, u32)> =
            base.into_iter().filter(|&(u, v)| u < n && v < n).collect();
        let inserts: Vec<(u32, u32)> =
            inserts.into_iter().filter(|&(u, v)| u < n && v < n).collect();

        let mut dynamic = DynamicGraph::new(graph_from_edges(n, &base));
        for &(u, v) in &inserts {
            dynamic.insert_edge(u, v);
        }
        let snapshot = dynamic.snapshot();

        let mut combined = base.clone();
        combined.extend(inserts.iter().copied());
        let rebuilt = graph_from_edges(n, &combined);

        prop_assert_eq!(snapshot.num_edges(), rebuilt.num_edges());
        let q = Query::new(0, 1, k).expect("valid");
        let mut a = CollectingSink::default();
        let mut b = CollectingSink::default();
        path_enum(&snapshot, q, PathEnumConfig::default(), &mut a).expect("valid query");
        path_enum(&rebuilt, q, PathEnumConfig::default(), &mut b).expect("valid query");
        prop_assert_eq!(a.sorted_paths(), b.sorted_paths());
    }

    #[test]
    fn inserted_edge_closes_exactly_the_reported_cycles(
        n in 4u32..10,
        base in proptest::collection::vec((0u32..10, 0u32..10), 0..30),
        (u, v) in (0u32..10, 0u32..10),
        k in 3u32..6,
    ) {
        prop_assume!(u != v && u < n && v < n);
        let base: Vec<(u32, u32)> =
            base.into_iter().filter(|&(a, b)| a < n && b < n && (a, b) != (u, v)).collect();
        let graph = graph_from_edges(n, &base);

        // Cycles through the new edge (u, v) = paths v -> u of <= k-1
        // edges in the pre-insertion graph.
        let q = Query::new(v, u, k - 1).expect("u != v");
        let mut sink = CollectingSink::default();
        path_enum(&graph, q, PathEnumConfig::default(), &mut sink).expect("valid query");

        // Each reported path closed by (u, v) is a simple cycle of <= k
        // edges containing the new edge.
        for path in &sink.paths {
            prop_assert_eq!(path[0], v);
            prop_assert_eq!(*path.last().unwrap(), u);
            prop_assert!(path.len() as u32 <= k);
            for w in path.windows(2) {
                prop_assert!(graph.has_edge(w[0], w[1]));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn snapshot_with_deletions_equals_rebuild(
        n in 4u32..12,
        base in proptest::collection::vec((0u32..12, 0u32..12), 2..40),
        deletions in proptest::collection::vec(0usize..64, 0..10),
        k in 2u32..5,
    ) {
        let base: Vec<(u32, u32)> = base
            .into_iter()
            .filter(|&(u, v)| u < n && v < n && u != v)
            .collect();
        prop_assume!(!base.is_empty());

        let mut dynamic = DynamicGraph::new(graph_from_edges(n, &base));
        let mut removed: Vec<(u32, u32)> = Vec::new();
        for idx in deletions {
            let (u, v) = base[idx % base.len()];
            if dynamic.remove_edge(u, v) {
                removed.push((u, v));
            }
        }
        let snapshot = dynamic.snapshot();

        let survivors: Vec<(u32, u32)> = base
            .iter()
            .filter(|e| !removed.contains(e))
            .copied()
            .collect();
        let rebuilt = graph_from_edges(n, &survivors);

        prop_assert_eq!(snapshot.num_edges(), rebuilt.num_edges());
        let q = Query::new(0, 1, k).expect("valid");
        let mut a = CollectingSink::default();
        let mut b = CollectingSink::default();
        path_enum(&snapshot, q, PathEnumConfig::default(), &mut a).expect("valid query");
        path_enum(&rebuilt, q, PathEnumConfig::default(), &mut b).expect("valid query");
        prop_assert_eq!(a.sorted_paths(), b.sorted_paths());
    }

    /// Cache invalidation across snapshots: an engine serving a mutated
    /// snapshot with a carried-over plan cache must produce exactly what
    /// a fresh cache-free engine produces — never a stale cached answer.
    #[test]
    fn mutations_invalidate_carried_plan_caches(
        n in 4u32..10,
        base in proptest::collection::vec((0u32..10, 0u32..10), 2..30),
        mutation in (0u32..10, 0u32..10, 0u32..2),
        k in 2u32..5,
    ) {
        let base: Vec<(u32, u32)> = base
            .into_iter()
            .filter(|&(u, v)| u < n && v < n && u != v)
            .collect();
        prop_assume!(!base.is_empty());
        let mut dynamic = DynamicGraph::new(graph_from_edges(n, &base));
        let request = || QueryRequest::paths(0, 1).max_hops(k).collect_paths(true);

        // Warm a cache on the first snapshot.
        let snap1 = dynamic.snapshot();
        let mut engine = QueryEngine::new(&snap1, PathEnumConfig::default());
        let before = engine.execute(&request()).expect("valid");
        prop_assert_eq!(
            engine.execute(&request()).expect("valid").report.cache,
            CacheOutcome::Hit
        );

        // Mutate (insert or delete), carry the cache to the new snapshot.
        let (u, v, delete_sel) = mutation;
        let mutated = if delete_sel == 1 {
            !base.is_empty() && dynamic.remove_edge(base[0].0, base[0].1)
        } else {
            u < n && v < n && dynamic.insert_edge(u, v)
        };
        let snap2 = dynamic.snapshot();
        let mut engine =
            QueryEngine::with_cache(&snap2, PathEnumConfig::default(), engine.into_cache());
        let after = engine.execute(&request()).expect("valid");

        let mut oracle =
            QueryEngine::with_cache(&snap2, PathEnumConfig::default(), PlanCache::new(0));
        let expected = oracle.execute(&request()).expect("valid");
        prop_assert_eq!(&after.paths, &expected.paths, "stale cache leaked through");

        if mutated {
            prop_assert_eq!(after.report.cache, CacheOutcome::Miss);
            prop_assert!(engine.cache_stats().invalidations >= 1);
        } else {
            // A rejected mutation keeps the version: still warm.
            prop_assert_eq!(after.report.cache, CacheOutcome::Hit);
            prop_assert_eq!(&after.paths, &before.paths);
        }
    }
}

#[test]
fn unmutated_snapshots_share_cached_plans_and_mutated_ones_do_not() {
    // Deterministic end-to-end walk of the epoch lifecycle. Figure-1-ish
    // chain with a detour: 0 -> 1 via 0->2->1 and 0->3->2->1.
    let mut dynamic = DynamicGraph::new(graph_from_edges(5, &[(0, 2), (2, 1), (0, 3), (3, 2)]));
    let request = || QueryRequest::paths(0, 1).max_hops(3).collect_paths(true);

    let snap1 = dynamic.snapshot();
    let mut engine = QueryEngine::new(&snap1, PathEnumConfig::default());
    let first = engine.execute(&request()).unwrap();
    assert_eq!(first.report.cache, CacheOutcome::Miss);
    assert_eq!(first.paths.len(), 2);

    // Snapshot again without mutating: same version, cache stays warm
    // across the engine swap.
    let snap1b = dynamic.snapshot();
    assert_eq!(snap1.version(), snap1b.version());
    let mut engine =
        QueryEngine::with_cache(&snap1b, PathEnumConfig::default(), engine.into_cache());
    let warm = engine.execute(&request()).unwrap();
    assert_eq!(warm.report.cache, CacheOutcome::Hit);
    assert_eq!(warm.paths, first.paths);

    // Insert 0 -> 1: a new direct path must appear (stale plan would
    // miss it).
    assert!(dynamic.insert_edge(0, 1));
    let snap2 = dynamic.snapshot();
    assert_ne!(snap2.version(), snap1.version());
    let mut engine =
        QueryEngine::with_cache(&snap2, PathEnumConfig::default(), engine.into_cache());
    let inserted = engine.execute(&request()).unwrap();
    assert_eq!(inserted.report.cache, CacheOutcome::Miss);
    assert_eq!(engine.cache_stats().invalidations, 1);
    assert_eq!(inserted.paths.len(), 3);
    assert!(inserted.paths.contains(&vec![0, 1]));

    // Delete 2 -> 1: two of the three paths disappear.
    assert!(dynamic.remove_edge(2, 1));
    let snap3 = dynamic.snapshot();
    let mut engine =
        QueryEngine::with_cache(&snap3, PathEnumConfig::default(), engine.into_cache());
    let deleted = engine.execute(&request()).unwrap();
    assert_eq!(deleted.report.cache, CacheOutcome::Miss);
    assert_eq!(deleted.paths, vec![vec![0, 1]]);
}

#[test]
fn overlay_rejects_duplicates_against_base_and_itself() {
    let g = graph_from_edges(4, &[(0, 1), (1, 2)]);
    let mut d = DynamicGraph::new(g);
    assert!(!d.insert_edge(0, 1));
    assert!(d.insert_edge(2, 3));
    assert!(!d.insert_edge(2, 3));
    assert_eq!(d.num_edges(), 3);
}

//! Dynamic-graph integration: overlay snapshots must behave exactly like
//! graphs rebuilt from scratch, and the fraud-cycle pattern (query
//! `q(v', v, k-1)` per inserted edge) must find exactly the cycles the
//! insertion closes.

use proptest::prelude::*;

use pathenum_repro::graph::DynamicGraph;
use pathenum_repro::prelude::*;

fn graph_from_edges(n: u32, edges: &[(u32, u32)]) -> CsrGraph {
    let mut b = GraphBuilder::new(n as usize);
    for &(u, v) in edges {
        if u != v {
            b.add_edge(u, v).expect("in-range edge");
        }
    }
    b.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn snapshot_equals_rebuild(
        n in 4u32..12,
        base in proptest::collection::vec((0u32..12, 0u32..12), 0..40),
        inserts in proptest::collection::vec((0u32..12, 0u32..12), 0..15),
        k in 2u32..5,
    ) {
        let base: Vec<(u32, u32)> =
            base.into_iter().filter(|&(u, v)| u < n && v < n).collect();
        let inserts: Vec<(u32, u32)> =
            inserts.into_iter().filter(|&(u, v)| u < n && v < n).collect();

        let mut dynamic = DynamicGraph::new(graph_from_edges(n, &base));
        for &(u, v) in &inserts {
            dynamic.insert_edge(u, v);
        }
        let snapshot = dynamic.snapshot();

        let mut combined = base.clone();
        combined.extend(inserts.iter().copied());
        let rebuilt = graph_from_edges(n, &combined);

        prop_assert_eq!(snapshot.num_edges(), rebuilt.num_edges());
        let q = Query::new(0, 1, k).expect("valid");
        let mut a = CollectingSink::default();
        let mut b = CollectingSink::default();
        path_enum(&snapshot, q, PathEnumConfig::default(), &mut a).expect("valid query");
        path_enum(&rebuilt, q, PathEnumConfig::default(), &mut b).expect("valid query");
        prop_assert_eq!(a.sorted_paths(), b.sorted_paths());
    }

    #[test]
    fn inserted_edge_closes_exactly_the_reported_cycles(
        n in 4u32..10,
        base in proptest::collection::vec((0u32..10, 0u32..10), 0..30),
        (u, v) in (0u32..10, 0u32..10),
        k in 3u32..6,
    ) {
        prop_assume!(u != v && u < n && v < n);
        let base: Vec<(u32, u32)> =
            base.into_iter().filter(|&(a, b)| a < n && b < n && (a, b) != (u, v)).collect();
        let graph = graph_from_edges(n, &base);

        // Cycles through the new edge (u, v) = paths v -> u of <= k-1
        // edges in the pre-insertion graph.
        let q = Query::new(v, u, k - 1).expect("u != v");
        let mut sink = CollectingSink::default();
        path_enum(&graph, q, PathEnumConfig::default(), &mut sink).expect("valid query");

        // Each reported path closed by (u, v) is a simple cycle of <= k
        // edges containing the new edge.
        for path in &sink.paths {
            prop_assert_eq!(path[0], v);
            prop_assert_eq!(*path.last().unwrap(), u);
            prop_assert!(path.len() as u32 <= k);
            for w in path.windows(2) {
                prop_assert!(graph.has_edge(w[0], w[1]));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn snapshot_with_deletions_equals_rebuild(
        n in 4u32..12,
        base in proptest::collection::vec((0u32..12, 0u32..12), 2..40),
        deletions in proptest::collection::vec(0usize..64, 0..10),
        k in 2u32..5,
    ) {
        let base: Vec<(u32, u32)> = base
            .into_iter()
            .filter(|&(u, v)| u < n && v < n && u != v)
            .collect();
        prop_assume!(!base.is_empty());

        let mut dynamic = DynamicGraph::new(graph_from_edges(n, &base));
        let mut removed: Vec<(u32, u32)> = Vec::new();
        for idx in deletions {
            let (u, v) = base[idx % base.len()];
            if dynamic.remove_edge(u, v) {
                removed.push((u, v));
            }
        }
        let snapshot = dynamic.snapshot();

        let survivors: Vec<(u32, u32)> = base
            .iter()
            .filter(|e| !removed.contains(e))
            .copied()
            .collect();
        let rebuilt = graph_from_edges(n, &survivors);

        prop_assert_eq!(snapshot.num_edges(), rebuilt.num_edges());
        let q = Query::new(0, 1, k).expect("valid");
        let mut a = CollectingSink::default();
        let mut b = CollectingSink::default();
        path_enum(&snapshot, q, PathEnumConfig::default(), &mut a).expect("valid query");
        path_enum(&rebuilt, q, PathEnumConfig::default(), &mut b).expect("valid query");
        prop_assert_eq!(a.sorted_paths(), b.sorted_paths());
    }

    /// Cache invalidation across snapshots: an engine serving a mutated
    /// snapshot with a carried-over plan cache must produce exactly what
    /// a fresh cache-free engine produces — never a stale cached answer.
    #[test]
    fn mutations_invalidate_carried_plan_caches(
        n in 4u32..10,
        base in proptest::collection::vec((0u32..10, 0u32..10), 2..30),
        mutation in (0u32..10, 0u32..10, 0u32..2),
        k in 2u32..5,
    ) {
        let base: Vec<(u32, u32)> = base
            .into_iter()
            .filter(|&(u, v)| u < n && v < n && u != v)
            .collect();
        prop_assume!(!base.is_empty());
        let mut dynamic = DynamicGraph::new(graph_from_edges(n, &base));
        let request = || QueryRequest::paths(0, 1).max_hops(k).collect_paths(true);

        // Warm a cache on the first snapshot.
        let snap1 = dynamic.snapshot();
        let mut engine = QueryEngine::new(&snap1, PathEnumConfig::default());
        let before = engine.execute(&request()).expect("valid");
        prop_assert_eq!(
            engine.execute(&request()).expect("valid").report.cache,
            CacheOutcome::Hit
        );

        // Mutate (insert or delete), carry the cache to the new snapshot.
        let (u, v, delete_sel) = mutation;
        let mutated = if delete_sel == 1 {
            !base.is_empty() && dynamic.remove_edge(base[0].0, base[0].1)
        } else {
            u < n && v < n && dynamic.insert_edge(u, v)
        };
        let snap2 = dynamic.snapshot();
        let mut engine =
            QueryEngine::with_cache(&snap2, PathEnumConfig::default(), engine.into_cache());
        let after = engine.execute(&request()).expect("valid");

        let mut oracle =
            QueryEngine::with_cache(&snap2, PathEnumConfig::default(), PlanCache::new(0));
        let expected = oracle.execute(&request()).expect("valid");
        prop_assert_eq!(&after.paths, &expected.paths, "stale cache leaked through");

        if mutated {
            prop_assert_eq!(after.report.cache, CacheOutcome::Miss);
            prop_assert!(engine.cache_stats().invalidations >= 1);
        } else {
            // A rejected mutation keeps the version: still warm.
            prop_assert_eq!(after.report.cache, CacheOutcome::Hit);
            prop_assert_eq!(&after.paths, &before.paths);
        }
    }
}

#[test]
fn unmutated_snapshots_share_cached_plans_and_mutated_ones_do_not() {
    // Deterministic end-to-end walk of the epoch lifecycle. Figure-1-ish
    // chain with a detour: 0 -> 1 via 0->2->1 and 0->3->2->1.
    let mut dynamic = DynamicGraph::new(graph_from_edges(5, &[(0, 2), (2, 1), (0, 3), (3, 2)]));
    let request = || QueryRequest::paths(0, 1).max_hops(3).collect_paths(true);

    let snap1 = dynamic.snapshot();
    let mut engine = QueryEngine::new(&snap1, PathEnumConfig::default());
    let first = engine.execute(&request()).unwrap();
    assert_eq!(first.report.cache, CacheOutcome::Miss);
    assert_eq!(first.paths.len(), 2);

    // Snapshot again without mutating: same version, cache stays warm
    // across the engine swap.
    let snap1b = dynamic.snapshot();
    assert_eq!(snap1.version(), snap1b.version());
    let mut engine =
        QueryEngine::with_cache(&snap1b, PathEnumConfig::default(), engine.into_cache());
    let warm = engine.execute(&request()).unwrap();
    assert_eq!(warm.report.cache, CacheOutcome::Hit);
    assert_eq!(warm.paths, first.paths);

    // Insert 0 -> 1: a new direct path must appear (stale plan would
    // miss it).
    assert!(dynamic.insert_edge(0, 1));
    let snap2 = dynamic.snapshot();
    assert_ne!(snap2.version(), snap1.version());
    let mut engine =
        QueryEngine::with_cache(&snap2, PathEnumConfig::default(), engine.into_cache());
    let inserted = engine.execute(&request()).unwrap();
    assert_eq!(inserted.report.cache, CacheOutcome::Miss);
    assert_eq!(engine.cache_stats().invalidations, 1);
    assert_eq!(inserted.paths.len(), 3);
    assert!(inserted.paths.contains(&vec![0, 1]));

    // Delete 2 -> 1: two of the three paths disappear.
    assert!(dynamic.remove_edge(2, 1));
    let snap3 = dynamic.snapshot();
    let mut engine =
        QueryEngine::with_cache(&snap3, PathEnumConfig::default(), engine.into_cache());
    let deleted = engine.execute(&request()).unwrap();
    assert_eq!(deleted.report.cache, CacheOutcome::Miss);
    assert_eq!(deleted.paths, vec![vec![0, 1]]);
}

#[test]
fn overlay_rejects_duplicates_against_base_and_itself() {
    let g = graph_from_edges(4, &[(0, 1), (1, 2)]);
    let mut d = DynamicGraph::new(g);
    assert!(!d.insert_edge(0, 1));
    assert!(d.insert_edge(2, 3));
    assert!(!d.insert_edge(2, 3));
    assert_eq!(d.num_edges(), 3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Oracle for arbitrary interleaved insert/remove/restore streams:
    /// the overlay must agree with a naive `HashSet` edge-set model on
    /// every mutation's return value, on `has_edge`/`num_edges` at every
    /// step, and on the final `snapshot()` edge set — including the
    /// delete-then-reinsert-base-edge and remove-inserted-edge chains.
    #[test]
    fn overlay_state_matches_a_hashset_model(
        n in 3u32..10,
        base in proptest::collection::vec((0u32..10, 0u32..10), 0..25),
        script in proptest::collection::vec((0u32..2, 0u32..10, 0u32..10), 0..60),
    ) {
        let base: Vec<(u32, u32)> = base
            .into_iter()
            .filter(|&(u, v)| u < n && v < n && u != v)
            .collect();
        let csr = graph_from_edges(n, &base);
        let mut model: std::collections::HashSet<(u32, u32)> = csr.edges().collect();
        let mut dynamic = DynamicGraph::new(csr);

        for (op, u, v) in script {
            if op == 0 {
                let expected = u != v && u < n && v < n && !model.contains(&(u, v));
                prop_assert_eq!(dynamic.insert_edge(u, v), expected, "insert {} -> {}", u, v);
                if expected {
                    model.insert((u, v));
                }
            } else {
                let expected = u < n && v < n && model.contains(&(u, v));
                prop_assert_eq!(dynamic.remove_edge(u, v), expected, "remove {} -> {}", u, v);
                if expected {
                    model.remove(&(u, v));
                }
            }
            prop_assert_eq!(dynamic.num_edges(), model.len());
        }

        for u in 0..n {
            for v in 0..n {
                prop_assert_eq!(
                    dynamic.has_edge(u, v),
                    model.contains(&(u, v)),
                    "has_edge({}, {})", u, v
                );
            }
        }
        let snapshot = dynamic.snapshot();
        let snapshot_edges: std::collections::HashSet<(u32, u32)> = snapshot.edges().collect();
        prop_assert_eq!(&snapshot_edges, &model, "snapshot edge set diverged");

        // The borrowed view agrees with the snapshot adjacency-for-adjacency
        // (same edges *and* same ascending order).
        let view = dynamic.view();
        for v in 0..n {
            let mut out = Vec::new();
            view.for_each_out(v, |w| out.push(w));
            prop_assert_eq!(out, snapshot.out_neighbors(v).to_vec(), "out({})", v);
            let mut inn = Vec::new();
            view.for_each_in(v, |w| inn.push(w));
            prop_assert_eq!(inn, snapshot.in_neighbors(v).to_vec(), "in({})", v);
        }
    }
}

/// Regression for the `remove_edge` rewrite: an interleaved 100k-update
/// insert/remove stream must complete in linear-ish time. The old
/// implementation removed overlay edges with `Vec::retain` over the
/// whole insert log — O(u²) over this stream, i.e. ~10^10 element visits
/// where this test would effectively hang.
#[test]
fn interleaved_100k_update_stream_stays_fast() {
    let n: u32 = 2048;
    // Base ring so removals can also hit base edges.
    let ring: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
    let mut dynamic = DynamicGraph::new(graph_from_edges(n, &ring));
    let base_edges = dynamic.num_edges();

    // Deterministic xorshift; no RNG dependency in the test crate.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };

    let mut live: Vec<(u32, u32)> = Vec::new();
    let mut net: i64 = 0;
    let updates = 100_000usize;
    for i in 0..updates {
        if i % 2 == 0 || live.is_empty() {
            let u = (next() % u64::from(n)) as u32;
            let v = (next() % u64::from(n)) as u32;
            if dynamic.insert_edge(u, v) {
                live.push((u, v));
                net += 1;
            }
        } else {
            let idx = (next() as usize) % live.len();
            let (u, v) = live.swap_remove(idx);
            assert!(dynamic.remove_edge(u, v), "live edge must be removable");
            net -= 1;
        }
    }
    assert_eq!(dynamic.num_edges() as i64, base_edges as i64 + net);
    assert_eq!(dynamic.inserted_edges().count(), live.len());
    assert_eq!(dynamic.snapshot().num_edges(), dynamic.num_edges());
}

/// Surgical retention: a mutation far from a cached query's reach keeps
/// the entry serving (a retained hit), while every answer stays equal to
/// a cache-free engine's.
#[test]
fn far_mutations_retain_entries_near_mutations_invalidate() {
    // Two chains sharing nothing: 0 -> 1 -> 2 and 10 -> 11 -> 12.
    let edges = [(0, 1), (1, 2), (10, 11), (11, 12)];
    let mut dynamic = DynamicGraph::new(graph_from_edges(16, &edges));
    let request = || QueryRequest::paths(0, 2).max_hops(3).collect_paths(true);

    let mut engine = DynamicEngine::new(&dynamic, PathEnumConfig::default());
    let first = engine.execute(&request()).unwrap();
    assert_eq!(first.report.cache, CacheOutcome::Miss);
    assert_eq!(first.paths, vec![vec![0, 1, 2]]);
    let cache = engine.into_cache();

    // Mutate only the far chain: the cached entry must survive.
    assert!(dynamic.insert_edge(12, 13));
    assert!(dynamic.remove_edge(10, 11));
    let mut engine = DynamicEngine::with_cache(&dynamic, PathEnumConfig::default(), cache);
    let retained = engine.execute(&request()).unwrap();
    assert_eq!(retained.report.cache, CacheOutcome::Hit);
    assert_eq!(engine.cache_stats().retained, 1);
    assert_eq!(retained.paths, first.paths);
    let cache = engine.into_cache();

    // Mutate inside the query's reach: the entry must be rebuilt, and
    // the new path must appear.
    assert!(dynamic.insert_edge(0, 2));
    let mut engine = DynamicEngine::with_cache(&dynamic, PathEnumConfig::default(), cache);
    let after = engine.execute(&request()).unwrap();
    assert_eq!(after.report.cache, CacheOutcome::Miss);
    assert!(engine.cache_stats().invalidations >= 1);
    let mut paths = after.paths;
    paths.sort_unstable();
    assert_eq!(paths, vec![vec![0, 1, 2], vec![0, 2]]);
}
